"""One run's observability bundle: a tracer + registry, saved as a trace dir.

A trace dir is the on-disk unit ``repro obs`` operates on::

    <trace-dir>/
      manifest.json       format version + run name (no timestamps)
      trace.jsonl         one trace record per line, sequence order
      trace_chrome.json   chrome://tracing / Perfetto-loadable export
      metrics.json        MetricsRegistry snapshot
      dashboard.txt       deterministic text dashboard

Every file is a pure function of the run's recorded behaviour — two
runs of the same configuration produce byte-identical trace dirs, which
is the property the CI observability smoke asserts with ``cmp`` and the
reason ``repro obs diff`` can attribute any delta to a real change.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

from repro.obs.export import (
    chrome_trace_json,
    metrics_json,
    render_dashboard,
    trace_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

FORMAT = "repro-obs/1"

MANIFEST_FILE = "manifest.json"
TRACE_FILE = "trace.jsonl"
CHROME_FILE = "trace_chrome.json"
METRICS_FILE = "metrics.json"
DASHBOARD_FILE = "dashboard.txt"


class RunObserver:
    """Collects one run's trace and metrics; writes the trace dir."""

    def __init__(self, run: str = "run") -> None:
        self.run = run
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()

    def save(self, trace_dir: str | pathlib.Path) -> list[pathlib.Path]:
        """Write the bundle; returns the written paths (manifest first)."""
        directory = pathlib.Path(trace_dir)
        directory.mkdir(parents=True, exist_ok=True)
        open_spans = self.tracer.open_spans()
        if open_spans:
            names = ", ".join(s.name for s in open_spans[:5])
            raise ValueError(
                f"{len(open_spans)} span(s) never closed (first: {names})"
            )
        manifest = {
            "format": FORMAT,
            "run": self.run,
            "files": [TRACE_FILE, CHROME_FILE, METRICS_FILE, DASHBOARD_FILE],
            "records": len(self.tracer),
            "metric_families": len(self.metrics),
        }
        contents = {
            MANIFEST_FILE: json.dumps(manifest, sort_keys=True, indent=2) + "\n",
            TRACE_FILE: trace_jsonl(self.tracer),
            CHROME_FILE: chrome_trace_json(self.tracer),
            METRICS_FILE: metrics_json(self.metrics),
            DASHBOARD_FILE: render_dashboard(self.metrics, self.tracer),
        }
        written = []
        for filename, content in contents.items():
            path = directory / filename
            path.write_text(content)
            written.append(path)
        return written


@dataclasses.dataclass(frozen=True)
class RunArtifacts:
    """A loaded trace dir (what ``repro obs`` subcommands consume)."""

    path: pathlib.Path
    manifest: dict
    metrics: dict

    @property
    def run(self) -> str:
        return str(self.manifest.get("run", "?"))

    def trace_records(self) -> list[dict]:
        """Parsed trace.jsonl lines, in file (= sequence) order."""
        trace_path = self.path / TRACE_FILE
        if not trace_path.exists():
            return []
        return [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
            if line.strip()
        ]

    def chrome_trace_path(self) -> pathlib.Path:
        return self.path / CHROME_FILE


def load_run(trace_dir: str | pathlib.Path) -> RunArtifacts:
    """Load a trace dir, validating its manifest."""
    directory = pathlib.Path(trace_dir)
    manifest_path = directory / MANIFEST_FILE
    if not manifest_path.exists():
        raise FileNotFoundError(
            f"{directory} is not a trace dir (no {MANIFEST_FILE}); "
            "produce one with --trace-dir on serve-bench/score-bench/study"
        )
    manifest = json.loads(manifest_path.read_text())
    declared = str(manifest.get("format", ""))
    if declared != FORMAT:
        raise ValueError(
            f"{directory} has trace format {declared!r}, expected {FORMAT!r}"
        )
    metrics_path = directory / METRICS_FILE
    metrics = json.loads(metrics_path.read_text()) if metrics_path.exists() else {}
    return RunArtifacts(path=directory, manifest=manifest, metrics=metrics)
