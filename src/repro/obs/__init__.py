"""Deterministic observability: tracing, metrics, exporters, run diffs.

The unified signal layer both runtimes emit into.  Everything is
simulated-time or logical-clock arithmetic — zero wall-clock or uuid
reads — so traces and metric snapshots are byte-identical across runs
of the same configuration, and ``repro obs diff`` compares two runs
with no noise floor.  See ``DESIGN.md`` §12.
"""

from repro.obs.diff import (
    DiffReport,
    MetricDelta,
    Regression,
    diff_metrics,
    diff_runs,
    find_regressions,
)
from repro.obs.export import (
    chrome_trace,
    chrome_trace_json,
    metrics_json,
    render_dashboard,
    trace_jsonl,
)
from repro.obs.metrics import (
    BUCKET_BOUNDS,
    LatencyHistogram,
    MetricFamily,
    MetricsRegistry,
    merge_histograms,
)
from repro.obs.recorder import (
    CHROME_FILE,
    DASHBOARD_FILE,
    FORMAT,
    MANIFEST_FILE,
    METRICS_FILE,
    TRACE_FILE,
    RunArtifacts,
    RunObserver,
    load_run,
)
from repro.obs.trace import Span, SpanContext, TraceEvent, Tracer

__all__ = [
    "BUCKET_BOUNDS",
    "CHROME_FILE",
    "DASHBOARD_FILE",
    "DiffReport",
    "FORMAT",
    "MANIFEST_FILE",
    "METRICS_FILE",
    "TRACE_FILE",
    "LatencyHistogram",
    "MetricDelta",
    "MetricFamily",
    "MetricsRegistry",
    "Regression",
    "RunArtifacts",
    "RunObserver",
    "Span",
    "SpanContext",
    "TraceEvent",
    "Tracer",
    "chrome_trace",
    "chrome_trace_json",
    "diff_metrics",
    "diff_runs",
    "find_regressions",
    "load_run",
    "merge_histograms",
    "metrics_json",
    "render_dashboard",
    "trace_jsonl",
]
