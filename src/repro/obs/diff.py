"""Run-over-run metric diffing for regression triage.

``repro obs diff A B`` compares two trace dirs' metric snapshots series
by series.  Because both snapshots are deterministic, *any* delta is a
real behaviour change — there is no machine noise to absorb — so the
throughput gate here can be as tight as the score-bench gate's 2%
without flaking.

Counters and gauges diff by value; histograms diff by count and mean.
Series present on only one side are reported as added/removed (a new
label value appearing — say a new alert kind — is itself a finding).
"""

from __future__ import annotations

import dataclasses
from typing import Iterator

from repro.obs.recorder import RunArtifacts

#: Gauges where lower-than-baseline means a performance regression.
#: Both bench recorders publish their headline rate under this name.
THROUGHPUT_METRICS = ("throughput_msgs_per_second",)


@dataclasses.dataclass(frozen=True)
class MetricDelta:
    """One series' change between two runs."""

    metric: str
    labels: str  # canonical "k=v,k=v" rendering ("-" for no labels)
    kind: str
    before: float | None  # None = series only exists after
    after: float | None  # None = series only exists before

    @property
    def changed(self) -> bool:
        return self.before != self.after

    @property
    def delta(self) -> float:
        return (self.after or 0.0) - (self.before or 0.0)

    @property
    def pct(self) -> float | None:
        """Fractional change vs before (None when before is 0/absent)."""
        if not self.before:
            return None
        return self.delta / self.before


@dataclasses.dataclass(frozen=True)
class Regression:
    """A gated finding (currently: throughput below tolerance)."""

    metric: str
    labels: str
    before: float
    after: float
    drop: float  # fractional

    def describe(self) -> str:
        return (
            f"{self.metric}{{{self.labels}}} dropped {self.drop:.1%}: "
            f"{self.before:,.1f} -> {self.after:,.1f}"
        )


def _scalar_series(metrics: dict) -> Iterator[tuple[str, str, str, float]]:
    """Flatten a metrics.json snapshot into scalar (metric, labels, kind,
    value) rows; histograms contribute their count and mean."""
    for name in sorted(metrics):
        family = metrics[name]
        kind = str(family.get("kind", "?"))
        for series in family.get("series", ()):
            labels = series.get("labels", {})
            label_text = (
                ",".join(f"{k}={labels[k]}" for k in sorted(labels)) or "-"
            )
            value = series.get("value")
            if isinstance(value, dict):  # histogram snapshot
                yield (name + ".count", label_text, kind,
                       float(value.get("count", 0)))
                yield (name + ".mean_s", label_text, kind,
                       float(value.get("mean_s", 0.0)))
            else:
                yield name, label_text, kind, float(value)


def diff_metrics(before: dict, after: dict) -> list[MetricDelta]:
    """All series deltas between two metric snapshots, sorted."""
    before_rows = {
        (metric, labels): (kind, value)
        for metric, labels, kind, value in _scalar_series(before)
    }
    after_rows = {
        (metric, labels): (kind, value)
        for metric, labels, kind, value in _scalar_series(after)
    }
    keys = sorted(dict.fromkeys(list(before_rows) + list(after_rows)))
    deltas = []
    for key in keys:
        metric, labels = key
        b = before_rows.get(key)
        a = after_rows.get(key)
        deltas.append(MetricDelta(
            metric=metric,
            labels=labels,
            kind=(a or b)[0],
            before=b[1] if b is not None else None,
            after=a[1] if a is not None else None,
        ))
    return deltas


def find_regressions(
    deltas: list[MetricDelta], max_regression: float = 0.02
) -> list[Regression]:
    """Throughput gate: flag any tracked rate that dropped more than
    ``max_regression`` (fractional) vs the before run."""
    regressions = []
    for delta in deltas:
        if delta.metric not in THROUGHPUT_METRICS:
            continue
        if delta.before is None or delta.after is None or delta.before <= 0:
            continue
        drop = (delta.before - delta.after) / delta.before
        if drop > max_regression:
            regressions.append(Regression(
                metric=delta.metric,
                labels=delta.labels,
                before=delta.before,
                after=delta.after,
                drop=drop,
            ))
    return regressions


@dataclasses.dataclass(frozen=True)
class DiffReport:
    """Outcome of comparing two trace dirs."""

    before: RunArtifacts
    after: RunArtifacts
    deltas: list[MetricDelta]
    regressions: list[Regression]

    @property
    def n_changed(self) -> int:
        return sum(1 for d in self.deltas if d.changed)

    @property
    def ok(self) -> bool:
        return not self.regressions


def diff_runs(
    before: RunArtifacts,
    after: RunArtifacts,
    max_regression: float = 0.02,
) -> DiffReport:
    deltas = diff_metrics(before.metrics, after.metrics)
    return DiffReport(
        before=before,
        after=after,
        deltas=deltas,
        regressions=find_regressions(deltas, max_regression=max_regression),
    )
