"""Reproduction of *A Large-Scale Characterization of Online Incitements
to Harassment Across Platforms* (Aliapoulios et al., ACM IMC 2021).

The package builds, end to end:

* a synthetic five-platform corpus substrate with planted ground truth
  (:mod:`repro.corpus`),
* a from-scratch NLP stack (:mod:`repro.nlp`),
* a simulated annotation ecosystem (:mod:`repro.annotation`),
* the paper's CTH/dox filtering pipeline (:mod:`repro.pipeline`),
* PII/gender extraction (:mod:`repro.extraction`),
* the attack-type and harm-risk taxonomies (:mod:`repro.taxonomy`),
* and every §6-§8 measurement (:mod:`repro.analysis`).

Quick start::

    from repro import StudyConfig, run_study
    study = run_study(StudyConfig.tiny())
    print(study.results[Task.CTH].funnel())

See README.md for the full tour and DESIGN.md for the paper-to-module map.
"""

from repro.corpus.generator import CorpusBuilder, CorpusConfig
from repro.lab import Study, StudyConfig, run_study
from repro.pipeline.filtering import FilteringPipeline, PipelineConfig
from repro.pipeline.vectorized import VectorizedCorpus
from repro.types import Gender, Platform, Source, Task

__version__ = "1.0.0"

__all__ = [
    "CorpusBuilder",
    "CorpusConfig",
    "FilteringPipeline",
    "PipelineConfig",
    "VectorizedCorpus",
    "Study",
    "StudyConfig",
    "run_study",
    "Gender",
    "Platform",
    "Source",
    "Task",
    "__version__",
]
