"""Fixed-size batching over any iterable.

Three consumers assemble message batches the same way — the stream
replay (:meth:`repro.service.stream.MessageStream.batches`), the
monitor's convenience loop (:meth:`repro.service.monitor.HarassmentMonitor.run`),
and the serving runtime's shutdown drain
(:mod:`repro.serve.runtime`) — so the loop lives here once.
"""

from __future__ import annotations

from typing import Iterable, Iterator, TypeVar

T = TypeVar("T")


def iter_batches(iterable: Iterable[T], size: int) -> Iterator[list[T]]:
    """Yield items from ``iterable`` in lists of ``size`` (last may be short)."""
    if size <= 0:
        raise ValueError("batch size must be positive")
    batch: list[T] = []
    for item in iterable:
        batch.append(item)
        if len(batch) == size:
            yield batch
            batch = []
    if batch:
        yield batch
