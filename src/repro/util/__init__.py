"""Shared utilities: deterministic RNG plumbing, batching, report rendering."""

from repro.util.batching import iter_batches
from repro.util.rng import child_rng, make_rng, stable_hash
from repro.util.tables import format_table, format_percent_count

__all__ = [
    "child_rng",
    "iter_batches",
    "make_rng",
    "stable_hash",
    "format_table",
    "format_percent_count",
]
