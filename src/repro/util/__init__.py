"""Shared utilities: deterministic RNG plumbing and report rendering."""

from repro.util.rng import child_rng, make_rng, stable_hash
from repro.util.tables import format_table, format_percent_count

__all__ = [
    "child_rng",
    "make_rng",
    "stable_hash",
    "format_table",
    "format_percent_count",
]
