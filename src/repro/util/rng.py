"""Deterministic random-number plumbing.

Every stochastic component in the reproduction takes an explicit seed and
derives independent child generators by name.  Deriving by name (rather
than by call order) means adding a new consumer of randomness does not
perturb existing experiments, which keeps benchmark output stable across
library revisions.
"""

from __future__ import annotations

import hashlib

import numpy as np

_MASK64 = (1 << 64) - 1


def stable_hash(*parts: object) -> int:
    """Return a 64-bit hash of ``parts`` that is stable across processes.

    Python's built-in ``hash`` is salted per process for strings, so it
    cannot be used to derive reproducible seeds.  This uses blake2b over
    the repr of each part instead.
    """
    digest = hashlib.blake2b(digest_size=8)
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x1f")
    return int.from_bytes(digest.digest(), "big") & _MASK64


def make_rng(seed: int) -> np.random.Generator:
    """Create a root generator from an integer seed."""
    # The sanctioned constructor DET001 funnels everyone else through.
    return np.random.default_rng(seed & _MASK64)  # repro: noqa[DET001]


def child_rng(seed: int, *name: object) -> np.random.Generator:
    """Derive an independent generator for the component named ``name``.

    ``child_rng(seed, "boards", 3)`` always yields the same stream for the
    same arguments, and streams for distinct names are independent.
    """
    return np.random.default_rng(stable_hash(seed, *name))  # repro: noqa[DET001]
