"""Plain-text table rendering used by the benchmark harness.

The benches print each paper table next to the measured reproduction, so
the renderer favours alignment and stable column ordering over fanciness.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    align_right: Sequence[bool] | None = None,
) -> str:
    """Render an aligned monospace table.

    ``align_right[i]`` right-aligns column ``i``; by default the first
    column is left-aligned and the rest are right-aligned, which suits the
    label-then-numbers shape of every table in the paper.
    """
    str_rows = [[_cell(value) for value in row] for row in rows]
    ncols = len(headers)
    for row in str_rows:
        if len(row) != ncols:
            raise ValueError(f"row has {len(row)} cells, expected {ncols}")
    if align_right is None:
        align_right = [False] + [True] * (ncols - 1)
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in str_rows)) if str_rows else len(headers[i])
        for i in range(ncols)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(_pad(headers[i], widths[i], align_right[i]) for i in range(ncols)))
    lines.append("  ".join("-" * widths[i] for i in range(ncols)))
    for row in str_rows:
        lines.append("  ".join(_pad(row[i], widths[i], align_right[i]) for i in range(ncols)))
    return "\n".join(lines)


def format_percent_count(count: int, total: int) -> str:
    """Render ``count`` as the paper's ``12.34% (567)`` cell format."""
    if total <= 0:
        return f"0.00% ({count})"
    return f"{100.0 * count / total:.2f}% ({count:,})"


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def _pad(text: str, width: int, right: bool) -> str:
    return text.rjust(width) if right else text.ljust(width)
