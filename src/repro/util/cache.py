"""Deterministic bounded LRU cache for pure text-keyed computations.

The scoring core (:mod:`repro.score`) memoises regex extraction,
taxonomy coding, and tokenization per *distinct text*.  Template-heavy
corpora — repeated copypasta being exactly the coordinated-incitement
pattern the paper studies — make these caches pay for themselves many
times over.

Determinism contract: the cache only ever stores values of **pure**
functions of the key, so a hit and a miss produce the same value and
eviction can change *work*, never *outputs*.  Recency order is an
``OrderedDict`` (insertion/access order), a pure function of the call
sequence — no clocks, no hash-salted iteration — so hit/miss counters
are byte-stable across runs for a fixed call sequence.
"""

from __future__ import annotations

import collections
from typing import Callable, Generic, Hashable, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """Bounded least-recently-used mapping with hit/miss accounting."""

    __slots__ = ("capacity", "hits", "misses", "evictions", "_entries")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: collections.OrderedDict[K, V] = collections.OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def get_or_compute(self, key: K, compute: Callable[[K], V]) -> tuple[V, bool]:
        """Return ``(value, hit)``; computes and stores on a miss.

        ``compute`` must be a pure function of ``key`` — that is what
        makes eviction unobservable in outputs.
        """
        entry = self._entries.get(key)
        if entry is not None or key in self._entries:
            self.hits += 1
            self._entries.move_to_end(key)
            return self._entries[key], True
        self.misses += 1
        value = compute(key)
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        return value, False

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, int | float]:
        """Counter snapshot (stable key order, JSON-ready)."""
        return {
            "capacity": self.capacity,
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def clear(self) -> None:
        """Drop entries; counters keep accumulating."""
        self._entries.clear()
