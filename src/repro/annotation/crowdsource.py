"""The paper's crowdsourcing protocol (§5.3), simulated end to end.

Protocol, exactly as described:

* annotators qualify by scoring >= 90 % on 10 gold questions;
* every document is annotated by two annotators;
* disagreements go to a third annotator who breaks the tie;
* annotators are re-tested every tenth document and removed (replaced)
  when their running gold score falls below 85 %;
* agreement statistics (disagreement rate, Cohen's kappa over the first
  two annotations) are recorded per batch.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.annotation.annotator import AnnotatorProfile, SimulatedAnnotator
from repro.nlp.metrics import cohens_kappa
from repro.util.rng import child_rng

QUALIFICATION_QUESTIONS = 10
QUALIFICATION_PASS = 0.90
RETEST_EVERY = 10
REMOVAL_SCORE = 0.85


@dataclasses.dataclass(frozen=True)
class CrowdsourceResult:
    """Labels and process statistics for one annotation batch."""

    labels: np.ndarray  # final (tie-broken) labels
    first: np.ndarray  # first annotator's labels
    second: np.ndarray  # second annotator's labels
    n_tiebreaks: int
    n_removed_annotators: int  # removals during this batch only
    n_qualification_failures: int  # failed recruitments during this batch only

    @property
    def disagreement_rate(self) -> float:
        if self.first.size == 0:
            return 0.0
        return float(np.mean(self.first != self.second))

    @property
    def kappa(self) -> float:
        return cohens_kappa(self.first, self.second)


class CrowdsourcingService:
    """A pool of simulated crowdworkers implementing the §5.3 protocol."""

    def __init__(self, profile: AnnotatorProfile, seed: int) -> None:
        self._profile = profile
        self._seed = seed
        self._next_id = 0
        self._qualification_failures = 0
        self._removed = 0
        self._pool: list[_Worker] = []

    @property
    def n_removed_annotators(self) -> int:
        """Annotators removed over this service's lifetime (all batches)."""
        return self._removed

    @property
    def n_qualification_failures(self) -> int:
        """Failed qualification attempts over this service's lifetime."""
        return self._qualification_failures

    def _recruit(self) -> "_Worker":
        """Recruit workers until one passes the qualification test."""
        while True:
            annotator = SimulatedAnnotator(self._next_id, self._profile, self._seed)
            self._next_id += 1
            if annotator.score_on_gold(QUALIFICATION_QUESTIONS) >= QUALIFICATION_PASS:
                return _Worker(annotator)
            self._qualification_failures += 1

    def _worker(self, index: int) -> "_Worker":
        while len(self._pool) <= index:
            self._pool.append(self._recruit())
        return self._pool[index]

    def _replace(self, index: int) -> None:
        self._removed += 1
        self._pool[index] = self._recruit()

    def annotate_batch(self, truths: Sequence[bool]) -> CrowdsourceResult:
        """Run the full two-annotator + tiebreak protocol over a batch."""
        truths = np.asarray(truths, dtype=bool)
        n = truths.size
        first = np.empty(n, dtype=bool)
        second = np.empty(n, dtype=bool)
        final = np.empty(n, dtype=bool)
        tiebreaks = 0
        removed_before = self._removed
        failures_before = self._qualification_failures
        for i, truth in enumerate(truths):
            a = self._worker(0)
            b = self._worker(1)
            first[i] = a.annotate_and_track(bool(truth))
            second[i] = b.annotate_and_track(bool(truth))
            if first[i] != second[i]:
                tiebreaks += 1
                final[i] = self._worker(2).annotate_and_track(bool(truth))
            else:
                final[i] = first[i]
            # Re-testing every tenth document (per worker slot).
            for slot in range(min(len(self._pool), 3)):
                worker = self._pool[slot]
                if worker.documents_done and worker.documents_done % RETEST_EVERY == 0:
                    if worker.annotator.score_on_gold(QUALIFICATION_QUESTIONS) < REMOVAL_SCORE:
                        self._replace(slot)
        return CrowdsourceResult(
            labels=final,
            first=first,
            second=second,
            n_tiebreaks=tiebreaks,
            n_removed_annotators=self._removed - removed_before,
            n_qualification_failures=self._qualification_failures - failures_before,
        )


class _Worker:
    """Pool bookkeeping around one annotator."""

    __slots__ = ("annotator", "documents_done")

    def __init__(self, annotator: SimulatedAnnotator) -> None:
        self.annotator = annotator
        self.documents_done = 0

    def annotate_and_track(self, truth: bool) -> bool:
        self.documents_done += 1
        return self.annotator.annotate(truth)
