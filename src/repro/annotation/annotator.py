"""Simulated noisy annotators.

Annotators are noisy oracles over the generator's planted ground truth,
with class-conditional accuracy: spotting a true positive is harder than
confirming an obvious negative, and the call-to-harassment task is harder
than the doxing task (the paper's inter-annotator agreement was 0.350 vs
0.519 for crowdworkers).  Profile parameters were calibrated so that the
simulated two-annotator kappas land near the paper's (see
benchmarks/bench_annotation_agreement.py).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.types import Task
from repro.util.rng import child_rng


@dataclasses.dataclass(frozen=True)
class AnnotatorProfile:
    """Class-conditional annotation accuracy, with per-annotator spread."""

    sensitivity: float  # P(label positive | truly positive)
    specificity: float  # P(label negative | truly negative)
    spread: float = 0.03  # per-annotator jitter of both accuracies

    def __post_init__(self) -> None:
        for name in ("sensitivity", "specificity"):
            value = getattr(self, name)
            if not 0.5 < value <= 1.0:
                raise ValueError(f"{name} must be in (0.5, 1], got {value}")


#: Crowdworker profiles per task, calibrated to the paper's crowd kappas
#: (dox 0.519, CTH 0.350) and disagreement rates (3.94 %, 18.66 %).
CROWD_PROFILES: dict[Task, AnnotatorProfile] = {
    Task.DOX: AnnotatorProfile(sensitivity=0.76, specificity=0.975),
    Task.CTH: AnnotatorProfile(sensitivity=0.68, specificity=0.90, spread=0.05),
}

#: Domain-expert profile (paper expert kappas: 0.893 dox / 0.845 CTH).
#: The review samples are heavily positive (classifier output), so expert
#: accuracy must be high for kappa to stay strong at that base rate.
EXPERT_PROFILE = AnnotatorProfile(sensitivity=0.98, specificity=0.995, spread=0.005)


class SimulatedAnnotator:
    """One annotator with fixed (jittered) class-conditional accuracy."""

    def __init__(self, annotator_id: int, profile: AnnotatorProfile, seed: int) -> None:
        self.annotator_id = annotator_id
        self.profile = profile
        self._rng = child_rng(seed, "annotator", annotator_id)
        jitter = self._rng.normal(0.0, profile.spread, size=2)
        self.sensitivity = float(np.clip(profile.sensitivity + jitter[0], 0.51, 1.0))
        self.specificity = float(np.clip(profile.specificity + jitter[1], 0.51, 1.0))

    def annotate(self, truth: bool) -> bool:
        """Produce a (possibly wrong) binary label for one document."""
        if truth:
            return bool(self._rng.random() < self.sensitivity)
        return bool(self._rng.random() >= self.specificity)

    def annotate_many(self, truths: np.ndarray) -> np.ndarray:
        truths = np.asarray(truths, dtype=bool)
        rolls = self._rng.random(truths.size)
        return np.where(truths, rolls < self.sensitivity, rolls >= self.specificity)

    def score_on_gold(self, n_questions: int, positive_rate: float = 0.5) -> float:
        """Simulate this annotator's score on a gold-question test."""
        if n_questions <= 0:
            raise ValueError("n_questions must be positive")
        truths = self._rng.random(n_questions) < positive_rate
        answers = self.annotate_many(truths)
        return float(np.mean(answers == truths))
