"""Inter-annotator agreement summaries (paper §5.3)."""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.annotation.annotator import SimulatedAnnotator
from repro.nlp.metrics import cohens_kappa


@dataclasses.dataclass(frozen=True)
class AgreementSummary:
    kappa: float
    disagreement_rate: float
    n_documents: int


def agreement_summary(labels_a: np.ndarray, labels_b: np.ndarray) -> AgreementSummary:
    """Kappa and raw disagreement rate between two annotators' labels."""
    a = np.asarray(labels_a)
    b = np.asarray(labels_b)
    if a.shape != b.shape:
        raise ValueError("label arrays must align")
    return AgreementSummary(
        kappa=cohens_kappa(a, b),
        disagreement_rate=float(np.mean(a != b)),
        n_documents=int(a.size),
    )


def expert_pair_agreement(
    truths: np.ndarray, expert_a: SimulatedAnnotator, expert_b: SimulatedAnnotator
) -> AgreementSummary:
    """Simulate the paper's dual-expert review of 1,000 predictions (§5.3)."""
    labels_a = expert_a.annotate_many(truths)
    labels_b = expert_b.annotate_many(truths)
    return agreement_summary(labels_a, labels_b)
