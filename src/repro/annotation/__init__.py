"""Annotation ecosystem: simulated annotators, the paper's crowdsourcing
protocol (§5.3), agreement statistics, and active-learning sampling."""

from repro.annotation.annotator import (
    AnnotatorProfile,
    SimulatedAnnotator,
    CROWD_PROFILES,
    EXPERT_PROFILE,
)
from repro.annotation.crowdsource import CrowdsourcingService, CrowdsourceResult
from repro.annotation.agreement import agreement_summary
from repro.annotation.active_learning import decile_sample

__all__ = [
    "AnnotatorProfile",
    "SimulatedAnnotator",
    "CROWD_PROFILES",
    "EXPERT_PROFILE",
    "CrowdsourcingService",
    "CrowdsourceResult",
    "agreement_summary",
    "decile_sample",
]
