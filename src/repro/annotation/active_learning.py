"""Active-learning sampling for crowdsourced annotation (paper §5.3).

The paper's cycle: train on precise data, predict the whole corpus, then
sample evenly across ten predicted-probability ranges and send the sample
to crowdworkers.  :func:`decile_sample` implements the stratified sampler;
the cycle itself is orchestrated by the filtering pipeline.
"""

from __future__ import annotations

import numpy as np

N_BINS = 10


def decile_sample(
    scores: np.ndarray,
    n_per_bin: int,
    rng: np.random.Generator,
    exclude: np.ndarray | None = None,
    n_bins: int = N_BINS,
) -> np.ndarray:
    """Sample document indices evenly across predicted-score ranges.

    ``scores`` are P(positive) for every candidate document; ``exclude``
    marks indices that must not be re-sampled (already annotated).  Bins
    are the fixed ranges [0, 0.1), [0.1, 0.2), ..., [0.9, 1.0] as in the
    paper; a bin with fewer candidates than ``n_per_bin`` contributes all
    of them.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 1:
        raise ValueError("scores must be one-dimensional")
    if n_per_bin <= 0:
        raise ValueError("n_per_bin must be positive")
    if np.any((scores < 0) | (scores > 1)):
        raise ValueError("scores must be probabilities in [0, 1]")
    available = np.ones(scores.size, dtype=bool)
    if exclude is not None:
        available[np.asarray(exclude, dtype=np.int64)] = False
    bins = np.minimum((scores * n_bins).astype(np.int64), n_bins - 1)
    chosen: list[np.ndarray] = []
    for b in range(n_bins):
        candidates = np.flatnonzero((bins == b) & available)
        if candidates.size == 0:
            continue
        take = min(n_per_bin, candidates.size)
        chosen.append(rng.choice(candidates, size=take, replace=False))
    if not chosen:
        return np.empty(0, dtype=np.int64)
    return np.sort(np.concatenate(chosen))
