"""Every number the paper reports, transcribed as structured constants.

This module is the single source of truth for paper-reported values.  It is
used in two places:

* the synthetic corpus generators calibrate their planted ground-truth
  distributions to these values (so a correct pipeline recovers the paper's
  shape), and
* every benchmark prints the paper's row next to the measured row and
  records both in EXPERIMENTS.md.

Counts are at paper scale.  The reproduction generates corpora at
``SCALE = 1/1000`` of paper scale; count-valued comparisons divide the
paper value by 1000, share-valued comparisons are direct.
"""

from __future__ import annotations

from repro.taxonomy.attack_types import AttackSubtype, AttackType
from repro.types import Gender, Platform, Source, Task

#: Corpus scale factor of the reproduction relative to the paper.
SCALE = 1.0 / 1000.0

# ---------------------------------------------------------------------------
# Table 1 — raw data sets
# ---------------------------------------------------------------------------

TABLE1_RAW_DATASETS: dict[Platform, dict[str, object]] = {
    Platform.BOARDS: {"posts": 405_943_342, "min_date": "2001-06-14", "max_date": "2020-08-01"},
    Platform.BLOGS: {"posts": 115_052, "min_date": "1999-04-23", "max_date": "2020-08-14"},
    Platform.CHAT: {"posts": 70_273_973, "min_date": "2015-09-21", "max_date": "2020-08-01"},
    Platform.GAB: {"posts": 50_165_961, "min_date": "2016-08-10", "max_date": "2020-08-01"},
    Platform.PASTES: {"posts": 32_555_682, "min_date": "2008-03-22", "max_date": "2020-08-01"},
}

#: Ancillary corpus facts from §4.
CORPUS_FACTS = {
    "board_domains": 43,
    "paste_domains": 41,
    "telegram_channels": 2_916,
    "telegram_users": 126_432,
    "high_risk_blogs": 19,
    "blogs_studied": 3,
}

# ---------------------------------------------------------------------------
# §5.1 — initial (seed) annotations
# ---------------------------------------------------------------------------

SEED_ANNOTATIONS = {
    Task.DOX: {"positive": 1_227, "negative": 10_387, "pastebin_positive": 799, "doxbin_positive": 428},
    Task.CTH: {"positive": 947, "negative": 424},
}

# ---------------------------------------------------------------------------
# Table 2 — crowdsourced training-set sizes (positive, negative)
# ---------------------------------------------------------------------------

TABLE2_TRAINING_DATA: dict[Task, dict[Platform, tuple[int, int]]] = {
    Task.DOX: {
        Platform.BOARDS: (163, 797),
        Platform.CHAT: (536, 19_943),
        Platform.GAB: (216, 35_166),
        Platform.PASTES: (2_955, 19_598),
    },
    Task.CTH: {
        Platform.BOARDS: (967, 8_751),
        Platform.CHAT: (401, 8_314),
        Platform.GAB: (356, 7_564),
        # The CTH task deliberately excludes pastes (no interactivity).
    },
}

TABLE2_TOTALS = {Task.DOX: (3_870, 75_504), Task.CTH: (1_724, 24_629)}

# ---------------------------------------------------------------------------
# §5.3 — annotation process statistics
# ---------------------------------------------------------------------------

ANNOTATION_STATS = {
    "documents_annotated_total": 100_000,  # "over 100,000"
    "documents_annotated_dox": 79_000,  # "over 79,000"
    "documents_annotated_cth": 25_000,  # "over 25,000"
    "disagreement_rate": {Task.DOX: 0.0394, Task.CTH: 0.1866},
    "crowd_kappa": {Task.DOX: 0.519, Task.CTH: 0.350},
    "expert_kappa": {Task.DOX: 0.893, Task.CTH: 0.845},
    "qualification_pass_score": 0.90,
    "qualification_set_size": 10,
    "retest_every": 10,
    "removal_score": 0.85,
    "expert_review_sample": 1_000,
}

# ---------------------------------------------------------------------------
# Table 3 — classifier performance (hyperparameter-optimised)
# ---------------------------------------------------------------------------

TABLE3_CLASSIFIER_PERF = {
    Task.DOX: {
        "text_length": 512,
        "positive": {"f1": 0.76, "precision": 0.77, "recall": 0.75},
        "negative": {"f1": 0.99, "precision": 0.99, "recall": 0.99},
        "weighted_avg": {"f1": 0.98, "precision": 0.98, "recall": 0.98},
        "macro_avg": {"f1": 0.88, "precision": 0.88, "recall": 0.88},
    },
    Task.CTH: {
        "text_length": 128,
        "positive": {"f1": 0.63, "precision": 0.63, "recall": 0.63},
        "negative": {"f1": 0.97, "precision": 0.97, "recall": 0.97},
        "weighted_avg": {"f1": 0.95, "precision": 0.95, "recall": 0.95},
        "macro_avg": {"f1": 0.80, "precision": 0.80, "recall": 0.80},
    },
}

# ---------------------------------------------------------------------------
# Table 4 — threshold selection & expert annotation outcomes
# ---------------------------------------------------------------------------
# (threshold, n_above_threshold, n_annotated, n_true_positive, fully_annotated)

TABLE4_THRESHOLDS: dict[Task, dict[Source, dict[str, object]]] = {
    Task.DOX: {
        Source.BOARDS: {"threshold": 0.9, "above": 14_675, "annotated": 3_300, "true_positive": 2_549, "full": False},
        Source.DISCORD: {"threshold": 0.5, "above": 197, "annotated": 197, "true_positive": 153, "full": True},
        Source.GAB: {"threshold": 0.8, "above": 1_905, "annotated": 1_905, "true_positive": 1_657, "full": True},
        Source.PASTES: {"threshold": 0.5, "above": 52_849, "annotated": 3_241, "true_positive": 3_118, "full": False},
        Source.TELEGRAM: {"threshold": 0.6, "above": 1_194, "annotated": 1_194, "true_positive": 948, "full": True},
    },
    Task.CTH: {
        Source.BOARDS: {"threshold": 0.935, "above": 30_685, "annotated": 3_016, "true_positive": 2_045, "full": False},
        Source.GAB: {"threshold": 0.935, "above": 2_141, "annotated": 2_141, "true_positive": 1_335, "full": True},
        Source.DISCORD: {"threshold": 0.5, "above": 1_093, "annotated": 1_093, "true_positive": 510, "full": True},
        Source.TELEGRAM: {"threshold": 0.7, "above": 4_166, "annotated": 4_166, "true_positive": 2_364, "full": True},
    },
}

# NOTE: the paper's printed dox total is 70,823, but its own rows sum to
# 70,820 — and §7.3 uses "the complete set of 70,820 documents above our
# dox classifier threshold", confirming the rows.  We keep the row sum.
TABLE4_TOTALS = {
    Task.DOX: {"above": 70_820, "annotated": 9_837, "true_positive": 8_425},
    Task.CTH: {"above": 38_085, "annotated": 10_416, "true_positive": 6_254},
}

#: Figure 1 funnel stage counts (documents).
FIGURE1_FUNNEL = {
    "raw_documents": 560_000_000,  # boards+chat+gab+pastes approx (Fig. 1: 560M)
    Task.DOX: {"annotations": 79_370, "above_threshold": 70_820, "sampled": 9_840, "true_positive": 8_430},
    Task.CTH: {"annotations": 26_350, "above_threshold": 38_090, "sampled": 10_420, "true_positive": 6_250},
}

#: Headline total of detected-and-validated posts across both pipelines.
TOTAL_DETECTED_POSTS = 14_679
#: Posts detected by BOTH pipelines (§1).
DETECTED_BY_BOTH = 95

# ---------------------------------------------------------------------------
# Table 5 — parent attack types per data set (share, count)
# ---------------------------------------------------------------------------

TABLE5_SIZES = {Platform.BOARDS: 2_045, Platform.CHAT: 2_874, Platform.GAB: 1_335}

TABLE5_ATTACK_TYPES: dict[AttackType, dict[Platform, tuple[float, int]]] = {
    AttackType.CONTENT_LEAKAGE: {Platform.BOARDS: (0.2557, 523), Platform.CHAT: (0.2109, 606), Platform.GAB: (0.2367, 316)},
    AttackType.GENERIC: {Platform.BOARDS: (0.0714, 146), Platform.CHAT: (0.0560, 161), Platform.GAB: (0.0457, 61)},
    AttackType.IMPERSONATION: {Platform.BOARDS: (0.0293, 60), Platform.CHAT: (0.0143, 41), Platform.GAB: (0.0120, 16)},
    AttackType.LOCKOUT_AND_CONTROL: {Platform.BOARDS: (0.0024, 5), Platform.CHAT: (0.0017, 5), Platform.GAB: (0.0, 0)},
    AttackType.OVERLOADING: {Platform.BOARDS: (0.0606, 124), Platform.CHAT: (0.1447, 416), Platform.GAB: (0.1985, 265)},
    AttackType.PUBLIC_OPINION_MANIPULATION: {Platform.BOARDS: (0.0694, 142), Platform.CHAT: (0.0313, 90), Platform.GAB: (0.0172, 23)},
    AttackType.REPORTING: {Platform.BOARDS: (0.5633, 1_152), Platform.CHAT: (0.5251, 1_509), Platform.GAB: (0.4082, 545)},
    AttackType.REPUTATIONAL_HARM: {Platform.BOARDS: (0.0782, 160), Platform.CHAT: (0.1287, 370), Platform.GAB: (0.1071, 143)},
    AttackType.SURVEILLANCE: {Platform.BOARDS: (0.0073, 15), Platform.CHAT: (0.0049, 14), Platform.GAB: (0.0037, 5)},
    AttackType.TOXIC_CONTENT: {Platform.BOARDS: (0.0763, 156), Platform.CHAT: (0.0254, 73), Platform.GAB: (0.0457, 61)},
}

#: Headline reporting statistics (§6.2).
REPORTING_HEADLINE = {
    "reporting_total": 3_193,
    "reporting_share": 0.51,
    "mass_flagging_total": 1_496,
    "false_reporting_total": 877,
}

# ---------------------------------------------------------------------------
# Table 11 — full subcategory taxonomy per data set (share, count)
# ---------------------------------------------------------------------------

TABLE11_TAXONOMY: dict[AttackSubtype, dict[Platform, tuple[float, int]]] = {
    AttackSubtype.DOXING: {Platform.BOARDS: (0.1746, 357), Platform.CHAT: (0.1246, 358), Platform.GAB: (0.2082, 278)},
    AttackSubtype.LEAKED_CHATS_PROFILE: {Platform.BOARDS: (0.0088, 18), Platform.CHAT: (0.0010, 3), Platform.GAB: (0.0045, 6)},
    AttackSubtype.NON_CONSENSUAL_MEDIA_EXPOSURE: {Platform.BOARDS: (0.0509, 104), Platform.CHAT: (0.0240, 69), Platform.GAB: (0.0172, 23)},
    AttackSubtype.OUTING_DEADNAMING: {Platform.BOARDS: (0.0020, 4), Platform.CHAT: (0.0007, 2), Platform.GAB: (0.0, 0)},
    AttackSubtype.DOX_PROPAGATION: {Platform.BOARDS: (0.0142, 29), Platform.CHAT: (0.0578, 166), Platform.GAB: (0.0060, 8)},
    AttackSubtype.CONTENT_LEAKAGE_MISC: {Platform.BOARDS: (0.0054, 11), Platform.CHAT: (0.0028, 8), Platform.GAB: (0.0007, 1)},
    AttackSubtype.IMPERSONATED_PROFILES: {Platform.BOARDS: (0.0220, 45), Platform.CHAT: (0.0132, 38), Platform.GAB: (0.0097, 13)},
    AttackSubtype.SYNTHETIC_PORNOGRAPHY: {Platform.BOARDS: (0.0044, 9), Platform.CHAT: (0.0003, 1), Platform.GAB: (0.0007, 1)},
    AttackSubtype.IMPERSONATION_MISC: {Platform.BOARDS: (0.0029, 6), Platform.CHAT: (0.0007, 2), Platform.GAB: (0.0015, 2)},
    AttackSubtype.ACCOUNT_LOCKOUT: {Platform.BOARDS: (0.0010, 2), Platform.CHAT: (0.0010, 3), Platform.GAB: (0.0, 0)},
    AttackSubtype.LOCKOUT_MISC: {Platform.BOARDS: (0.0015, 3), Platform.CHAT: (0.0007, 2), Platform.GAB: (0.0, 0)},
    AttackSubtype.NEGATIVE_RATINGS_REVIEWS: {Platform.BOARDS: (0.0024, 5), Platform.CHAT: (0.0031, 9), Platform.GAB: (0.0037, 5)},
    AttackSubtype.RAIDING: {Platform.BOARDS: (0.0435, 89), Platform.CHAT: (0.1287, 370), Platform.GAB: (0.1828, 244)},
    AttackSubtype.SPAMMING: {Platform.BOARDS: (0.0088, 18), Platform.CHAT: (0.0077, 22), Platform.GAB: (0.0120, 16)},
    AttackSubtype.OVERLOADING_MISC: {Platform.BOARDS: (0.0059, 12), Platform.CHAT: (0.0052, 15), Platform.GAB: (0.0, 0)},
    AttackSubtype.HASHTAG_HIJACKING: {Platform.BOARDS: (0.0078, 16), Platform.CHAT: (0.0139, 40), Platform.GAB: (0.0165, 22)},
    AttackSubtype.PUBLIC_OPINION_MISC: {Platform.BOARDS: (0.0616, 126), Platform.CHAT: (0.0174, 50), Platform.GAB: (0.0007, 1)},
    AttackSubtype.FALSE_REPORTING_TO_AUTHORITIES: {Platform.BOARDS: (0.2000, 409), Platform.CHAT: (0.1082, 311), Platform.GAB: (0.1176, 157)},
    AttackSubtype.MASS_FLAGGING: {Platform.BOARDS: (0.2039, 417), Platform.CHAT: (0.3163, 909), Platform.GAB: (0.1266, 169)},
    AttackSubtype.REPORTING_MISC: {Platform.BOARDS: (0.1594, 326), Platform.CHAT: (0.1006, 289), Platform.GAB: (0.1640, 219)},
    AttackSubtype.REPUTATIONAL_HARM_PRIVATE: {Platform.BOARDS: (0.0313, 64), Platform.CHAT: (0.0445, 128), Platform.GAB: (0.0180, 24)},
    AttackSubtype.REPUTATIONAL_HARM_PUBLIC: {Platform.BOARDS: (0.0196, 40), Platform.CHAT: (0.0835, 240), Platform.GAB: (0.0884, 118)},
    AttackSubtype.REPUTATIONAL_HARM_MISC: {Platform.BOARDS: (0.0274, 56), Platform.CHAT: (0.0007, 2), Platform.GAB: (0.0007, 1)},
    AttackSubtype.STALKING_OR_TRACKING: {Platform.BOARDS: (0.0049, 10), Platform.CHAT: (0.0049, 14), Platform.GAB: (0.0030, 4)},
    AttackSubtype.SURVEILLANCE_MISC: {Platform.BOARDS: (0.0024, 5), Platform.CHAT: (0.0, 0), Platform.GAB: (0.0007, 1)},
    AttackSubtype.HATE_SPEECH: {Platform.BOARDS: (0.0386, 79), Platform.CHAT: (0.0198, 57), Platform.GAB: (0.0442, 59)},
    AttackSubtype.UNWANTED_EXPLICIT_CONTENT: {Platform.BOARDS: (0.0220, 45), Platform.CHAT: (0.0031, 9), Platform.GAB: (0.0015, 2)},
    AttackSubtype.TOXIC_CONTENT_MISC: {Platform.BOARDS: (0.0156, 32), Platform.CHAT: (0.0024, 7), Platform.GAB: (0.0, 0)},
    AttackSubtype.GENERIC: {Platform.BOARDS: (0.0714, 146), Platform.CHAT: (0.0560, 161), Platform.GAB: (0.0457, 61)},
}

# ---------------------------------------------------------------------------
# Table 10 — taxonomy per target gender (share, count)
# ---------------------------------------------------------------------------

TABLE10_SIZES = {Gender.UNKNOWN: 2_711, Gender.FEMALE: 1_160, Gender.MALE: 2_383}

TABLE10_GENDER: dict[AttackSubtype, dict[Gender, tuple[float, int]]] = {
    AttackSubtype.DOXING: {Gender.UNKNOWN: (0.1096, 297), Gender.FEMALE: (0.1853, 215), Gender.MALE: (0.2018, 481)},
    AttackSubtype.LEAKED_CHATS_PROFILE: {Gender.UNKNOWN: (0.0015, 4), Gender.FEMALE: (0.0112, 13), Gender.MALE: (0.0042, 10)},
    AttackSubtype.NON_CONSENSUAL_MEDIA_EXPOSURE: {Gender.UNKNOWN: (0.0269, 73), Gender.FEMALE: (0.0647, 75), Gender.MALE: (0.0201, 48)},
    AttackSubtype.OUTING_DEADNAMING: {Gender.UNKNOWN: (0.0004, 1), Gender.FEMALE: (0.0017, 2), Gender.MALE: (0.0013, 3)},
    AttackSubtype.DOX_PROPAGATION: {Gender.UNKNOWN: (0.0210, 57), Gender.FEMALE: (0.0164, 19), Gender.MALE: (0.0533, 127)},
    AttackSubtype.CONTENT_LEAKAGE_MISC: {Gender.UNKNOWN: (0.0018, 5), Gender.FEMALE: (0.0034, 4), Gender.MALE: (0.0046, 11)},
    AttackSubtype.IMPERSONATED_PROFILES: {Gender.UNKNOWN: (0.0240, 65), Gender.FEMALE: (0.0129, 15), Gender.MALE: (0.0067, 16)},
    AttackSubtype.SYNTHETIC_PORNOGRAPHY: {Gender.UNKNOWN: (0.0007, 2), Gender.FEMALE: (0.0060, 7), Gender.MALE: (0.0008, 2)},
    AttackSubtype.IMPERSONATION_MISC: {Gender.UNKNOWN: (0.0018, 5), Gender.FEMALE: (0.0026, 3), Gender.MALE: (0.0008, 2)},
    AttackSubtype.ACCOUNT_LOCKOUT: {Gender.UNKNOWN: (0.0007, 2), Gender.FEMALE: (0.0, 0), Gender.MALE: (0.0013, 3)},
    AttackSubtype.LOCKOUT_MISC: {Gender.UNKNOWN: (0.0, 0), Gender.FEMALE: (0.0009, 1), Gender.MALE: (0.0017, 4)},
    AttackSubtype.NEGATIVE_RATINGS_REVIEWS: {Gender.UNKNOWN: (0.0033, 9), Gender.FEMALE: (0.0009, 1), Gender.MALE: (0.0038, 9)},
    AttackSubtype.RAIDING: {Gender.UNKNOWN: (0.1044, 283), Gender.FEMALE: (0.1586, 184), Gender.MALE: (0.0990, 236)},
    AttackSubtype.SPAMMING: {Gender.UNKNOWN: (0.0085, 23), Gender.FEMALE: (0.0060, 7), Gender.MALE: (0.0109, 26)},
    AttackSubtype.OVERLOADING_MISC: {Gender.UNKNOWN: (0.0007, 2), Gender.FEMALE: (0.0026, 3), Gender.MALE: (0.0092, 22)},
    AttackSubtype.HASHTAG_HIJACKING: {Gender.UNKNOWN: (0.0255, 69), Gender.FEMALE: (0.0009, 1), Gender.MALE: (0.0034, 8)},
    AttackSubtype.PUBLIC_OPINION_MISC: {Gender.UNKNOWN: (0.0413, 112), Gender.FEMALE: (0.0207, 24), Gender.MALE: (0.0172, 41)},
    AttackSubtype.FALSE_REPORTING_TO_AUTHORITIES: {Gender.UNKNOWN: (0.1368, 371), Gender.FEMALE: (0.1457, 169), Gender.MALE: (0.1414, 337)},
    AttackSubtype.MASS_FLAGGING: {Gender.UNKNOWN: (0.3017, 818), Gender.FEMALE: (0.1250, 145), Gender.MALE: (0.2232, 532)},
    AttackSubtype.REPORTING_MISC: {Gender.UNKNOWN: (0.1575, 427), Gender.FEMALE: (0.0931, 108), Gender.MALE: (0.1255, 299)},
    AttackSubtype.REPUTATIONAL_HARM_PRIVATE: {Gender.UNKNOWN: (0.0214, 58), Gender.FEMALE: (0.0750, 87), Gender.MALE: (0.0298, 71)},
    AttackSubtype.REPUTATIONAL_HARM_PUBLIC: {Gender.UNKNOWN: (0.0745, 202), Gender.FEMALE: (0.0466, 54), Gender.MALE: (0.0596, 142)},
    AttackSubtype.REPUTATIONAL_HARM_MISC: {Gender.UNKNOWN: (0.0066, 18), Gender.FEMALE: (0.0147, 17), Gender.MALE: (0.0101, 24)},
    AttackSubtype.STALKING_OR_TRACKING: {Gender.UNKNOWN: (0.0041, 11), Gender.FEMALE: (0.0060, 7), Gender.MALE: (0.0042, 10)},
    AttackSubtype.SURVEILLANCE_MISC: {Gender.UNKNOWN: (0.0015, 4), Gender.FEMALE: (0.0017, 2), Gender.MALE: (0.0, 0)},
    AttackSubtype.HATE_SPEECH: {Gender.UNKNOWN: (0.0221, 60), Gender.FEMALE: (0.0345, 40), Gender.MALE: (0.0399, 95)},
    AttackSubtype.UNWANTED_EXPLICIT_CONTENT: {Gender.UNKNOWN: (0.0037, 10), Gender.FEMALE: (0.0241, 28), Gender.MALE: (0.0076, 18)},
    AttackSubtype.TOXIC_CONTENT_MISC: {Gender.UNKNOWN: (0.0015, 4), Gender.FEMALE: (0.0043, 5), Gender.MALE: (0.0126, 30)},
    AttackSubtype.GENERIC: {Gender.UNKNOWN: (0.0421, 114), Gender.FEMALE: (0.0853, 99), Gender.MALE: (0.0650, 155)},
}

# ---------------------------------------------------------------------------
# §6.2 — co-occurrence of attack types
# ---------------------------------------------------------------------------

COOCCURRENCE_STATS = {
    "multi_type_share": 0.13,
    "multi_type_count": 831,
    "two_types": 767,
    "three_types": 54,
    "four_plus_types": 10,
    "surveillance_with_leakage": 0.64,
    "impersonation_with_pom": 0.30,
}

# ---------------------------------------------------------------------------
# §6.3 — CTH thread analysis (boards only)
# ---------------------------------------------------------------------------

CTH_THREAD_STATS = {
    "first_post_share": 0.037,
    "first_post_count": 75,
    "last_post_share": 0.027,
    "last_post_count": 55,
    "position_median": 70,
    "position_mean": 145,
    "position_std": 263,
    "toxic_content_t_stat": 2.8477,
    "baseline_sample": 5_000,
    "tested_cth": 1_541,
    "bh_error_rate": 0.1,
}

THREAD_OVERLAP_STATS = {
    "cth_above_threshold": 30_685,
    "cth_with_dox": 2_620,
    "cth_with_dox_share": 0.0853,
    "dox_threads_with_cth_share": 0.1785,
    "random_thread_cth_share": 0.0020,
    "random_thread_dox_share": 0.0010,
}

#: Gender of CTH targets (§6.2).
CTH_GENDER_COUNTS = {Gender.MALE: 2_383, Gender.FEMALE: 1_160, Gender.UNKNOWN: 2_711}

# ---------------------------------------------------------------------------
# Table 6 — PII prevalence in annotated doxes (share, count)
# ---------------------------------------------------------------------------

TABLE6_SIZES = {Platform.BOARDS: 2_549, Platform.CHAT: 1_101, Platform.GAB: 1_657, Platform.PASTES: 3_118}

TABLE6_PII: dict[str, dict[Platform, tuple[float, int]]] = {
    "address": {Platform.BOARDS: (0.2934, 748), Platform.CHAT: (0.2961, 326), Platform.GAB: (0.1804, 299), Platform.PASTES: (0.4567, 1_424)},
    "credit_card": {Platform.BOARDS: (0.0016, 4), Platform.CHAT: (0.0427, 47), Platform.GAB: (0.0, 0), Platform.PASTES: (0.0494, 154)},
    "email": {Platform.BOARDS: (0.1487, 379), Platform.CHAT: (0.1471, 162), Platform.GAB: (0.2004, 332), Platform.PASTES: (0.4535, 1_414)},
    "facebook": {Platform.BOARDS: (0.1244, 317), Platform.CHAT: (0.0636, 70), Platform.GAB: (0.0604, 100), Platform.PASTES: (0.3932, 1_226)},
    "instagram": {Platform.BOARDS: (0.0420, 107), Platform.CHAT: (0.0327, 36), Platform.GAB: (0.0060, 10), Platform.PASTES: (0.0997, 311)},
    "phone": {Platform.BOARDS: (0.2217, 565), Platform.CHAT: (0.2698, 297), Platform.GAB: (0.3024, 501), Platform.PASTES: (0.4551, 1_419)},
    "ssn": {Platform.BOARDS: (0.0071, 18), Platform.CHAT: (0.0136, 15), Platform.GAB: (0.0042, 7), Platform.PASTES: (0.0398, 124)},
    "twitter": {Platform.BOARDS: (0.0930, 237), Platform.CHAT: (0.0345, 38), Platform.GAB: (0.0628, 104), Platform.PASTES: (0.1363, 425)},
    "youtube": {Platform.BOARDS: (0.0824, 210), Platform.CHAT: (0.0200, 22), Platform.GAB: (0.0109, 18), Platform.PASTES: (0.1180, 368)},
}

PII_EXTRACTION_EVAL = {
    "eval_set_size": 98,
    "min_accuracy": 0.95,
    "perfect_regexes": 7,
    "gender_eval_set_size": 123,
    "gender_accuracy": 0.943,
}

# ---------------------------------------------------------------------------
# Figure 2 — harm-risk overlap
# ---------------------------------------------------------------------------

FIGURE2_HARM_TOTALS = {"online": 3_959, "physical": 3_518, "economic": 2_443, "reputation": 3_601}

FIGURE2_STATS = {
    "all_four_count": 970,
    "all_four_share": 0.115,
    "all_four_pastes_share": 0.73,
    "largest_combination": 1_016,
    # §7.2: more than 50% of Discord samples had no harm-risk indicator.
    "discord_no_risk_share": 0.50,
    # Reputation risk occurs alone in 23% of chat-data cases.
    "chat_reputation_alone_share": 0.23,
}

# ---------------------------------------------------------------------------
# §7.3 — repeated doxes
# ---------------------------------------------------------------------------

REPEATED_DOX_STATS = {
    "above_threshold_total": 70_820,
    "repeated_count": 14_587,
    "repeated_share": 0.201,
    "same_dataset_share": 0.98,
    "cross_posted_count": 250,
    "pastes_count": 13_076,
    "pastes_share": 0.8964,
    "boards_count": 1_402,
    "boards_share": 0.0961,
    "chat_count": 62,
    "gab_count": 47,
    "annotated_repeated_count": 936,
    "annotated_repeated_share": 0.1112,
}

# ---------------------------------------------------------------------------
# §7.4 — dox thread analysis
# ---------------------------------------------------------------------------

DOX_THREAD_STATS = {
    "first_post_share": 0.097,
    "first_post_count": 248,
    "last_post_share": 0.027,
    "last_post_count": 69,
    "position_median": 142,
    "position_mean": 59,
    "position_std": 236,
}

# ---------------------------------------------------------------------------
# Table 8 — blog analysis funnel
# ---------------------------------------------------------------------------

TABLE8_BLOGS = {
    "daily_stormer": {"posts": 36_851, "relevant": 3_072, "actual_doxes": 90, "actual_share": 0.029},
    "noblogs": {"posts": 78_108, "relevant": 668, "relevant_with_foreign": 1_389, "actual_doxes": 66, "actual_share": 0.098},
    "the_torch": {"posts": 93, "relevant": 38, "actual_doxes": 23, "actual_share": 0.605},
}

BLOG_STATS = {
    "torch_keyword_missed": 10,
    "torch_total_doxes": 33,
    "stormer_overload_share": 0.60,
    "stormer_overload_count": 54,
    "stormer_contact_only_count": 26,
    "stormer_contact_only_share": 0.29,
    "noblogs_two_blogs_share": 0.45,
    "blog_keywords": ("phone", "email", "dox", "dob:"),
}

# ---------------------------------------------------------------------------
# §7.1 — PII co-occurrence headlines
# ---------------------------------------------------------------------------

PII_COOCCURRENCE_STATS = {
    "core_min_cooccurrence": 0.35,  # address/phone/email co-occur >35% with all others
    "facebook_email": 0.39,
    "facebook_phone": 0.25,
    "facebook_address": 0.24,
    "youtube_core_max": 0.15,
    "twitter_core_max": 0.20,
}


def scaled(count: int | float, scale: float = SCALE) -> int:
    """Scale a paper count down to reproduction scale (at least 1 if >0)."""
    value = int(round(count * scale))
    if count > 0:
        return max(value, 1)
    return 0
