"""Initial (seed) annotations for both tasks (paper §5.1, Fig. 4).

* **Doxes**: the paper bootstrapped from Snyder et al.'s pastebin labels
  plus Doxbin positives.  The stand-in draws the same-shaped seed set from
  the paste substrate, using oracle labels in the role of the prior work's
  annotations.
* **Calls to harassment**: no prior labels existed; the paper mined
  candidates with a conjunctive keyword query (mobilising language AND an
  outgroup target reference) over the board data sets and had three
  authors annotate them.  Both steps are reproduced: the query predicate
  and the simulated three-expert majority annotation.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Sequence

import numpy as np

from repro.annotation.annotator import EXPERT_PROFILE, SimulatedAnnotator
from repro.corpus.documents import Document
from repro.types import Platform, Source, Task
from repro.util.rng import child_rng

#: First clause of the Fig.-4 query: mobilising language.
MOBILIZING_PATTERNS = (
    "we need to",
    "we should",
    "lets",
    "let's",
    "we have",
    "we will",
    "we ",
)
#: Subclause: in-group mobilising language versus a target.
TARGET_PATTERNS = (" them", " him", " her", " all", " entire")

_MOBILIZING_RE = re.compile("|".join(re.escape(p) for p in MOBILIZING_PATTERNS))
_TARGET_RE = re.compile("|".join(re.escape(p) for p in TARGET_PATTERNS))


def matches_seed_query(text: str) -> bool:
    """The paper's conjunctive keyword query as a predicate (Fig. 4)."""
    lowered = text.lower()
    return bool(_MOBILIZING_RE.search(lowered)) and bool(_TARGET_RE.search(lowered))


@dataclasses.dataclass(frozen=True)
class SeedSet:
    """Document positions (into the pipeline's doc list) with seed labels."""

    positions: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if self.positions.shape != self.labels.shape:
            raise ValueError("positions and labels must align")

    @property
    def n_positive(self) -> int:
        return int(self.labels.sum())

    @property
    def n_negative(self) -> int:
        return int(self.labels.size - self.labels.sum())


def cth_seed_candidates(
    documents: Sequence[Document], sources: Sequence[Source] = (Source.BOARDS,)
) -> np.ndarray:
    """Positions of documents matching the keyword query on seed sources."""
    wanted = set(sources)
    return np.array(
        [
            pos
            for pos, doc in enumerate(documents)
            if doc.source in wanted and matches_seed_query(doc.text)
        ],
        dtype=np.int64,
    )


def build_cth_seed(
    documents: Sequence[Document],
    seed: int,
    max_candidates: int = 2_000,
) -> SeedSet:
    """Keyword-mine CTH candidates and annotate them with three experts.

    The final seed label is the majority vote of three simulated domain
    experts, mirroring the three author-annotators of §5.1.
    """
    rng = child_rng(seed, "cth-seed")
    candidates = cth_seed_candidates(documents)
    if candidates.size == 0:
        raise ValueError("keyword query matched no documents; corpus too small?")
    if candidates.size > max_candidates:
        candidates = np.sort(rng.choice(candidates, size=max_candidates, replace=False))
    experts = [SimulatedAnnotator(i, EXPERT_PROFILE, seed + 101) for i in range(3)]
    truths = np.array([documents[p].truth.is_cth for p in candidates], dtype=bool)
    votes = np.stack([e.annotate_many(truths) for e in experts])
    labels = votes.sum(axis=0) >= 2
    return SeedSet(positions=candidates, labels=labels)


def build_dox_seed(
    documents: Sequence[Document],
    seed: int,
    n_positive: int = 600,
    n_negative: int = 5_000,
) -> SeedSet:
    """Draw the prior-work-shaped dox seed set from the paste substrate.

    Positive labels play the role of Snyder et al.'s annotations (which
    were human ground truth); negatives are paste documents sampled at
    random (and oracle-checked, as the prior work's negatives were).
    """
    rng = child_rng(seed, "dox-seed")
    paste_positions = np.array(
        [pos for pos, doc in enumerate(documents) if doc.platform is Platform.PASTES],
        dtype=np.int64,
    )
    if paste_positions.size == 0:
        raise ValueError("no paste documents available for the dox seed")
    truths = np.array([documents[p].truth.is_dox for p in paste_positions], dtype=bool)
    pos_pool = paste_positions[truths]
    neg_pool = paste_positions[~truths]
    take_pos = min(n_positive, pos_pool.size)
    take_neg = min(n_negative, neg_pool.size)
    if take_pos == 0 or take_neg == 0:
        raise ValueError("paste substrate lacks one of the seed classes")
    chosen_pos = rng.choice(pos_pool, size=take_pos, replace=False)
    chosen_neg = rng.choice(neg_pool, size=take_neg, replace=False)
    positions = np.concatenate([chosen_pos, chosen_neg])
    labels = np.concatenate([np.ones(take_pos, bool), np.zeros(take_neg, bool)])
    order = np.argsort(positions)
    return SeedSet(positions=positions[order], labels=labels[order])


def build_seed(documents: Sequence[Document], task: Task, seed: int) -> SeedSet:
    if task is Task.CTH:
        return build_cth_seed(documents, seed)
    return build_dox_seed(documents, seed)
