"""The end-to-end filtering pipeline (paper Fig. 1 and §5).

Stages, matching the paper's numbering:

1. seed annotations (§5.1) — prior-work-shaped dox labels / keyword-mined
   and expert-annotated CTH labels;
2. train the filter classifier on the seeds;
3. active learning (§5.3): predict the full corpus, sample evenly across
   ten score deciles per source, crowdsource-annotate, retrain — repeated
   ``al_rounds`` times;
4. hold-out evaluation of the final classifier (§5.4, Table 3);
5. per-source threshold selection by precision spot-checks (§5.5);
6. expert annotation of above-threshold samples → true positives
   (Table 4);
7. the annotated true-positive sets feed every analysis in §6–§7.

Each stage is a named node on the :mod:`repro.engine` execution graph
(``seed`` → ``train`` → ``al:<round>`` → {``evaluate``,
``final-train`` → ``score`` → ``annotate:<source>``} → ``result``), so a
run is checkpointable per stage, re-runnable from any cached prefix, and
the per-source threshold searches — which share nothing but the final
score vector — execute concurrently under ``jobs > 1``.  Every stage is
a pure function of its inputs plus *named* RNG streams
(:func:`repro.util.rng.child_rng`), which is what makes cached,
parallel, and sequential runs byte-identical.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Mapping, Sequence

import numpy as np

from repro import paper
from repro.annotation.active_learning import decile_sample
from repro.annotation.annotator import CROWD_PROFILES, EXPERT_PROFILE, SimulatedAnnotator
from repro.annotation.crowdsource import CrowdsourceResult, CrowdsourcingService
from repro.engine import FILTER_MODEL, NUMPY, Engine
from repro.nlp.features import HashingVectorizer
from repro.nlp.metrics import binary_classification_report, roc_auc
from repro.nlp.models.logreg import LogisticRegressionClassifier
from repro.nlp.spans import SpanStrategy
from repro.pipeline.errors import PipelineError
from repro.pipeline.results import AnnotationProcessStats, PipelineResult, SourceOutcome
from repro.pipeline.seeds import SeedSet, build_seed
from repro.pipeline.thresholds import THRESHOLD_GRID, select_threshold
from repro.pipeline.vectorized import TaskView, VectorizedCorpus
from repro.types import Source, Task
from repro.util.rng import child_rng

#: Sources each task's pipeline covers (paper Table 4; CTH excludes pastes).
TASK_SOURCES: Mapping[Task, tuple[Source, ...]] = {
    Task.DOX: (Source.BOARDS, Source.DISCORD, Source.GAB, Source.PASTES, Source.TELEGRAM),
    Task.CTH: (Source.BOARDS, Source.GAB, Source.DISCORD, Source.TELEGRAM),
}

#: Text length per task, in tokens per span.  The paper's optimised text
#: lengths were 512 and 128 *characters* (Table 3); at ~4 characters per
#: token these correspond to 128 and 32 tokens.
TASK_MAX_TOKENS: Mapping[Task, int] = {Task.DOX: 128, Task.CTH: 32}


@dataclasses.dataclass(frozen=True)
class PipelineConfig:
    """Pipeline knobs; defaults reproduce the paper's protocol."""

    seed: int = 7
    al_rounds: int = 2
    al_per_bin: int = 60  # documents per score decile per source per round
    span_strategy: SpanStrategy = SpanStrategy.RANDOM_NO_OVERLAP
    max_tokens: int | None = None  # None -> TASK_MAX_TOKENS[task]
    eval_fraction: float = 0.2
    target_precision: float = 0.92
    spot_sample_size: int = 200
    threshold_grid: tuple[float, ...] = THRESHOLD_GRID
    model_epochs: int = 6
    model_l2: float = 1e-6
    #: Per-source expert annotation caps; None -> the paper's Table 4 caps.
    annotation_caps: Mapping[Source, int] | None = None

    @classmethod
    def tiny(cls, seed: int = 7) -> "PipelineConfig":
        return cls(seed=seed, al_per_bin=12, model_epochs=4, spot_sample_size=40)

    def __post_init__(self) -> None:
        if not 0 < self.eval_fraction < 0.5:
            raise ValueError("eval_fraction must be in (0, 0.5)")
        if self.al_rounds < 0:
            raise ValueError("al_rounds must be non-negative")
        if not 0 < self.target_precision <= 1:
            raise ValueError("target_precision must be in (0, 1]")
        if self.spot_sample_size <= 0:
            raise ValueError("spot_sample_size must be positive")
        if self.model_epochs <= 0:
            raise ValueError("model_epochs must be positive")


class FilterModel:
    """A span-aware filter classifier bound to one task view."""

    def __init__(
        self,
        view: TaskView,
        epochs: int = 6,
        l2: float = 1e-6,
        seed: int = 0,
        classifier: LogisticRegressionClassifier | None = None,
    ) -> None:
        self.view = view
        self._model = classifier or LogisticRegressionClassifier(
            epochs=epochs, l2=l2, seed=seed
        )

    @property
    def classifier(self) -> LogisticRegressionClassifier:
        return self._model

    def fit(self, positions: Sequence[int], labels: np.ndarray) -> "FilterModel":
        rows, owner = self.view.rows_for_docs(positions)
        labels = np.asarray(labels, dtype=bool)
        self._model.fit(rows, labels[owner])
        return self

    def predict_all(self) -> np.ndarray:
        """Document-level P(positive) for every document in the view."""
        span_scores = self._model.predict_proba(self.view.matrix)
        return self.view.doc_scores(span_scores)

    def predict_docs(self, positions: Sequence[int]) -> np.ndarray:
        rows, owner = self.view.rows_for_docs(positions)
        span_scores = self._model.predict_proba(rows)
        sums = np.bincount(owner, weights=span_scores, minlength=len(positions))
        counts = np.bincount(owner, minlength=len(positions))
        counts[counts == 0] = 1
        return sums / counts


@dataclasses.dataclass
class TrainingState:
    """Label store + annotation-process state carried between stages.

    The dicts are copied stage to stage (cheap); the crowdsourcing
    service travels by reference within one run and by pickle through
    the artifact store, so a round resumed from cache sees exactly the
    worker pool and counters the previous round left behind.
    """

    labels: dict[int, bool]
    crowd_labels: dict[int, bool]
    crowd_batches: tuple[CrowdsourceResult, ...]
    crowd: CrowdsourcingService
    classifier: LogisticRegressionClassifier


@dataclasses.dataclass(frozen=True)
class EvalOutcome:
    """Held-out evaluation of the final classifier (stage 4)."""

    report: Mapping[str, Mapping[str, float]]
    auc: float


class FilteringPipeline:
    """Runs one task's full Fig.-1 pipeline over a vectorized corpus."""

    def __init__(self, task: Task, config: PipelineConfig | None = None) -> None:
        self.task = task
        self.config = config or PipelineConfig()

    # -- public -------------------------------------------------------------

    def run(self, vc: VectorizedCorpus, engine: Engine | None = None) -> PipelineResult:
        """Execute the pipeline; identical with or without a shared engine."""
        if engine is None:
            engine = Engine()
        source = engine.add_source(f"vectorized:{self.task.value}", vc)
        result = self.register(engine, source)
        return engine.run([result]).values[result]

    def register(self, engine: Engine, vectorized: str) -> str:
        """Register this task's stage graph; returns the result stage name.

        ``vectorized`` names an already-registered stage producing the
        shared :class:`VectorizedCorpus`.
        """
        cfg = self.config
        t = self.task.value
        seed_s = engine.add(
            f"seed:{t}", self._stage_seed, inputs=(vectorized,), key=(cfg,)
        )
        prev = engine.add(
            f"train:{t}", self._stage_train, inputs=(vectorized, seed_s), key=(cfg,)
        )
        for al_round in range(cfg.al_rounds):
            prev = engine.add(
                f"al:{t}:{al_round}",
                functools.partial(self._stage_al_round, al_round),
                inputs=(vectorized, prev),
                key=(cfg, al_round),
            )
        eval_s = engine.add(
            f"evaluate:{t}", self._stage_evaluate, inputs=(vectorized, prev), key=(cfg,)
        )
        model_s = engine.add(
            f"final-train:{t}",
            self._stage_final_train,
            inputs=(vectorized, prev),
            key=(cfg,),
            codec=FILTER_MODEL,
        )
        score_s = engine.add(
            f"score:{t}",
            self._stage_score,
            inputs=(vectorized, model_s),
            key=(cfg,),
            codec=NUMPY,
        )
        annotate_stages = [
            engine.add(
                f"annotate:{t}:{source.value}",
                functools.partial(self._stage_threshold_and_annotate, source),
                inputs=(vectorized, score_s),
                key=(cfg, source.value),
            )
            for source in TASK_SOURCES[self.task]
        ]
        return engine.add(
            f"result:{t}",
            self._stage_assemble,
            inputs=(vectorized, prev, eval_s, score_s, *annotate_stages),
            key=(cfg,),
        )

    # -- stage functions ----------------------------------------------------

    def _stage_seed(self, vc: VectorizedCorpus) -> SeedSet:
        """Stage 1: seed annotations (§5.1)."""
        return build_seed(vc.documents, self.task, self.config.seed)

    def _stage_train(self, vc: VectorizedCorpus, seed_set: SeedSet) -> TrainingState:
        """Stage 2: initial training on the seeds."""
        labels = {int(p): bool(l) for p, l in zip(seed_set.positions, seed_set.labels)}
        return TrainingState(
            labels=labels,
            crowd_labels={},
            crowd_batches=(),
            crowd=CrowdsourcingService(CROWD_PROFILES[self.task], self.config.seed),
            classifier=self._fit(self._view(vc), labels),
        )

    def _stage_al_round(
        self, al_round: int, vc: VectorizedCorpus, state: TrainingState
    ) -> TrainingState:
        """Stage 3: one active-learning round (§5.3)."""
        cfg = self.config
        documents = vc.documents
        view = self._view(vc)
        scores = FilterModel(view, classifier=state.classifier).predict_all()
        labels = dict(state.labels)
        crowd_labels = dict(state.crowd_labels)
        batches = list(state.crowd_batches)
        for source, positions in self._eligible_by_source(documents).items():
            if positions.size == 0:
                continue
            already = np.array(
                [i for i, p in enumerate(positions) if int(p) in labels],
                dtype=np.int64,
            )
            local = decile_sample(
                scores[positions], cfg.al_per_bin,
                child_rng(cfg.seed, "al", self.task.value, al_round, source.value),
                exclude=already if already.size else None,
            )
            if local.size == 0:
                continue
            chosen = positions[local]
            truths = np.array([documents[p].truth_for(self.task) for p in chosen])
            result = state.crowd.annotate_batch(truths)
            batches.append(result)
            for p, label in zip(chosen, result.labels):
                labels[int(p)] = bool(label)
                crowd_labels[int(p)] = bool(label)
        return TrainingState(
            labels=labels,
            crowd_labels=crowd_labels,
            crowd_batches=tuple(batches),
            crowd=state.crowd,
            classifier=self._fit(view, labels),
        )

    def _stage_evaluate(self, vc: VectorizedCorpus, state: TrainingState) -> EvalOutcome:
        """Stage 4: hold out a slice of the *crowd-annotated* data (§5.4).

        The seed annotations stay in training (they bootstrapped the
        model); evaluation mirrors the paper's withheld annotation sets.
        """
        view = self._view(vc)
        labels_store = state.labels
        rng = child_rng(self.config.seed, "pipeline", self.task.value)
        eval_pool = np.fromiter(
            state.crowd_labels.keys(), dtype=np.int64, count=len(state.crowd_labels)
        )
        if eval_pool.size < 20:  # degenerate corpora: fall back to everything
            eval_pool = np.fromiter(
                labels_store.keys(), dtype=np.int64, count=len(labels_store)
            )
        n_eval = max(int(eval_pool.size * self.config.eval_fraction), 10)
        eval_positions = rng.choice(
            eval_pool, size=min(n_eval, eval_pool.size // 2), replace=False
        )
        eval_set = set(int(p) for p in eval_positions)
        train_positions = np.array(
            [p for p in labels_store if p not in eval_set], dtype=np.int64
        )
        train_labels = np.array([labels_store[int(p)] for p in train_positions], dtype=bool)
        if train_labels.all() or not train_labels.any():
            n_positive = int(train_labels.sum())
            raise PipelineError(
                "train split lost a class; corpus too small for evaluation",
                task=self.task,
                n_train_positive=n_positive,
                n_train_negative=int(train_labels.size - n_positive),
                hint="raise al_per_bin or the corpus size so both classes "
                "survive the held-out split",
            )
        model = FilterModel(
            view, epochs=self.config.model_epochs, l2=self.config.model_l2,
            seed=self.config.seed,
        ).fit(train_positions, train_labels)
        probs = model.predict_docs(eval_positions)
        y_true = np.array([labels_store[int(p)] for p in eval_positions], dtype=bool)
        report = binary_classification_report(
            y_true, probs > 0.5,
            positive_name="positive", negative_name="negative",
        )
        auc = roc_auc(y_true, probs) if y_true.any() and not y_true.all() else float("nan")
        return EvalOutcome(report=report, auc=auc)

    def _stage_final_train(
        self, vc: VectorizedCorpus, state: TrainingState
    ) -> tuple[LogisticRegressionClassifier, HashingVectorizer]:
        """Final model on all annotations (the §3 releasable classifier)."""
        return self._fit(self._view(vc), state.labels), vc.vectorizer

    def _stage_score(
        self,
        vc: VectorizedCorpus,
        final: tuple[LogisticRegressionClassifier, HashingVectorizer],
    ) -> np.ndarray:
        """Score the whole corpus with the final model."""
        classifier, _vectorizer = final
        return FilterModel(self._view(vc), classifier=classifier).predict_all()

    def _stage_threshold_and_annotate(
        self, source: Source, vc: VectorizedCorpus, scores: np.ndarray
    ) -> SourceOutcome | None:
        """Stages 5–6: threshold selection + expert annotation (§5.5–§5.6).

        Independent across sources — each gets its own named RNG streams
        and its own simulated expert, so the per-source stages can run
        concurrently yet byte-identically to a sequential run.
        """
        cfg = self.config
        documents = vc.documents
        positions = self._eligible_by_source(documents)[source]
        if positions.size == 0:
            return None
        expert = self._expert_for(source)
        source_scores = scores[positions]
        truths = np.array([documents[p].truth_for(self.task) for p in positions])

        def annotate(sample_idx: np.ndarray) -> np.ndarray:
            return expert.annotate_many(truths[sample_idx])

        cap = self._caps().get(source, int(1e12))
        decision = select_threshold(
            source_scores,
            annotate,
            child_rng(cfg.seed, "threshold", self.task.value, source.value),
            grid=cfg.threshold_grid,
            target_precision=cfg.target_precision,
            sample_size=cfg.spot_sample_size,
            annotatable_cap=cap,
        )
        above_local = np.flatnonzero(source_scores > decision.threshold)
        fully = above_local.size <= cap
        if fully:
            annotated_local = above_local
        else:
            rng = child_rng(cfg.seed, "annotate", self.task.value, source.value)
            annotated_local = np.sort(rng.choice(above_local, size=cap, replace=False))
        expert_labels = expert.annotate_many(truths[annotated_local])
        tp_local = annotated_local[expert_labels]
        return SourceOutcome(
            source=source,
            threshold=decision.threshold,
            n_above=int(above_local.size),
            n_annotated=int(annotated_local.size),
            n_true_positive=int(tp_local.size),
            fully_annotated=fully,
            above_positions=positions[above_local],
            true_positive_positions=positions[tp_local],
        )

    def _stage_assemble(
        self,
        vc: VectorizedCorpus,
        state: TrainingState,
        evaluation: EvalOutcome,
        scores: np.ndarray,
        *source_outcomes: SourceOutcome | None,
    ) -> PipelineResult:
        """Stage 7: fold every stage output into the result container."""
        documents = vc.documents
        outcomes = {o.source: o for o in source_outcomes if o is not None}
        return PipelineResult(
            task=self.task,
            documents=documents,
            outcomes=outcomes,
            eval_report=evaluation.report,
            eval_auc=evaluation.auc,
            training_data_sizes=self._training_sizes(state.crowd_labels, documents),
            annotation_stats=_combine_crowd_stats(state.crowd_batches, state.crowd),
            scores=scores,
            max_tokens=self.config.max_tokens or TASK_MAX_TOKENS[self.task],
        )

    # -- internals ----------------------------------------------------------

    def _view(self, vc: VectorizedCorpus) -> TaskView:
        cfg = self.config
        max_tokens = cfg.max_tokens or TASK_MAX_TOKENS[self.task]
        return vc.task_view(max_tokens, cfg.span_strategy)

    def _eligible_by_source(self, documents: Sequence) -> dict[Source, np.ndarray]:
        source_of = np.array(
            [s.value if (s := doc.source) is not None else "" for doc in documents]
        )
        return {
            source: np.flatnonzero(source_of == source.value)
            for source in TASK_SOURCES[self.task]
        }

    def _expert_for(self, source: Source) -> SimulatedAnnotator:
        """One domain expert per (task, source), on an independent stream."""
        task_base = 900 + 10 * (0 if self.task is Task.DOX else 1)
        source_index = TASK_SOURCES[self.task].index(source)
        return SimulatedAnnotator(task_base + source_index, EXPERT_PROFILE, self.config.seed)

    def _caps(self) -> dict[Source, int]:
        if self.config.annotation_caps is not None:
            return dict(self.config.annotation_caps)
        return {
            source: (int(1e12) if row["full"] else int(row["annotated"]))
            for source, row in paper.TABLE4_THRESHOLDS[self.task].items()
        }

    def _fit(
        self, view: TaskView, labels_store: Mapping[int, bool]
    ) -> LogisticRegressionClassifier:
        positions = np.fromiter(labels_store.keys(), dtype=np.int64, count=len(labels_store))
        labels = np.fromiter(labels_store.values(), dtype=bool, count=len(labels_store))
        model = FilterModel(
            view, epochs=self.config.model_epochs, l2=self.config.model_l2,
            seed=self.config.seed,
        )
        return model.fit(positions, labels).classifier

    def _training_sizes(
        self,
        crowd_labels: Mapping[int, bool],
        documents: Sequence,
    ) -> dict[Source, tuple[int, int]]:
        sizes = {source: [0, 0] for source in TASK_SOURCES[self.task]}
        for position, label in crowd_labels.items():
            source = documents[position].source
            if source in sizes:
                sizes[source][0 if label else 1] += 1
        return {source: (pos, neg) for source, (pos, neg) in sizes.items()}


def _combine_crowd_stats(
    batches: Sequence[CrowdsourceResult],
    service: CrowdsourcingService | None = None,
) -> AnnotationProcessStats:
    """Aggregate per-batch agreement stats with the service's lifetime totals.

    Removal and qualification-failure counts accumulate on the long-lived
    :class:`CrowdsourcingService` across batches, so the totals come from
    the service; per-batch deltas are only summed as a fallback when no
    service is supplied.
    """
    if service is not None:
        n_removed = service.n_removed_annotators
        n_qualification = service.n_qualification_failures
    else:
        n_removed = sum(b.n_removed_annotators for b in batches)
        n_qualification = sum(b.n_qualification_failures for b in batches)
    if not batches:
        return AnnotationProcessStats(0, 0.0, float("nan"), 0, n_removed, n_qualification)
    first = np.concatenate([b.first for b in batches])
    second = np.concatenate([b.second for b in batches])
    from repro.nlp.metrics import cohens_kappa  # local to avoid cycle at import

    return AnnotationProcessStats(
        n_documents=int(first.size),
        disagreement_rate=float(np.mean(first != second)),
        kappa=cohens_kappa(first, second),
        n_tiebreaks=sum(b.n_tiebreaks for b in batches),
        n_removed_annotators=n_removed,
        n_qualification_failures=n_qualification,
    )
