"""The end-to-end filtering pipeline (paper Fig. 1 and §5).

Stages, matching the paper's numbering:

1. seed annotations (§5.1) — prior-work-shaped dox labels / keyword-mined
   and expert-annotated CTH labels;
2. train the filter classifier on the seeds;
3. active learning (§5.3): predict the full corpus, sample evenly across
   ten score deciles per source, crowdsource-annotate, retrain — repeated
   ``al_rounds`` times;
4. hold-out evaluation of the final classifier (§5.4, Table 3);
5. per-source threshold selection by precision spot-checks (§5.5);
6. expert annotation of above-threshold samples → true positives
   (Table 4);
7. the annotated true-positive sets feed every analysis in §6–§7.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

import numpy as np

from repro import paper
from repro.annotation.active_learning import decile_sample
from repro.annotation.annotator import CROWD_PROFILES, EXPERT_PROFILE, SimulatedAnnotator
from repro.annotation.crowdsource import CrowdsourceResult, CrowdsourcingService
from repro.nlp.metrics import binary_classification_report, roc_auc
from repro.nlp.models.logreg import LogisticRegressionClassifier
from repro.nlp.spans import SpanStrategy
from repro.pipeline.results import AnnotationProcessStats, PipelineResult, SourceOutcome
from repro.pipeline.seeds import build_seed
from repro.pipeline.thresholds import THRESHOLD_GRID, select_threshold
from repro.pipeline.vectorized import TaskView, VectorizedCorpus
from repro.types import Source, Task
from repro.util.rng import child_rng

#: Sources each task's pipeline covers (paper Table 4; CTH excludes pastes).
TASK_SOURCES: Mapping[Task, tuple[Source, ...]] = {
    Task.DOX: (Source.BOARDS, Source.DISCORD, Source.GAB, Source.PASTES, Source.TELEGRAM),
    Task.CTH: (Source.BOARDS, Source.GAB, Source.DISCORD, Source.TELEGRAM),
}

#: Text length per task, in tokens per span.  The paper's optimised text
#: lengths were 512 and 128 *characters* (Table 3); at ~4 characters per
#: token these correspond to 128 and 32 tokens.
TASK_MAX_TOKENS: Mapping[Task, int] = {Task.DOX: 128, Task.CTH: 32}


@dataclasses.dataclass(frozen=True)
class PipelineConfig:
    """Pipeline knobs; defaults reproduce the paper's protocol."""

    seed: int = 7
    al_rounds: int = 2
    al_per_bin: int = 60  # documents per score decile per source per round
    span_strategy: SpanStrategy = SpanStrategy.RANDOM_NO_OVERLAP
    max_tokens: int | None = None  # None -> TASK_MAX_TOKENS[task]
    eval_fraction: float = 0.2
    target_precision: float = 0.92
    spot_sample_size: int = 200
    threshold_grid: tuple[float, ...] = THRESHOLD_GRID
    model_epochs: int = 6
    model_l2: float = 1e-6
    #: Per-source expert annotation caps; None -> the paper's Table 4 caps.
    annotation_caps: Mapping[Source, int] | None = None

    @classmethod
    def tiny(cls, seed: int = 7) -> "PipelineConfig":
        return cls(seed=seed, al_per_bin=12, model_epochs=4, spot_sample_size=40)

    def __post_init__(self) -> None:
        if not 0 < self.eval_fraction < 0.5:
            raise ValueError("eval_fraction must be in (0, 0.5)")
        if self.al_rounds < 0:
            raise ValueError("al_rounds must be non-negative")


class FilterModel:
    """A span-aware filter classifier bound to one task view."""

    def __init__(self, view: TaskView, epochs: int = 6, l2: float = 1e-6, seed: int = 0) -> None:
        self.view = view
        self._model = LogisticRegressionClassifier(epochs=epochs, l2=l2, seed=seed)

    def fit(self, positions: Sequence[int], labels: np.ndarray) -> "FilterModel":
        rows, owner = self.view.rows_for_docs(positions)
        labels = np.asarray(labels, dtype=bool)
        self._model.fit(rows, labels[owner])
        return self

    def predict_all(self) -> np.ndarray:
        """Document-level P(positive) for every document in the view."""
        span_scores = self._model.predict_proba(self.view.matrix)
        return self.view.doc_scores(span_scores)

    def predict_docs(self, positions: Sequence[int]) -> np.ndarray:
        rows, owner = self.view.rows_for_docs(positions)
        span_scores = self._model.predict_proba(rows)
        sums = np.bincount(owner, weights=span_scores, minlength=len(positions))
        counts = np.bincount(owner, minlength=len(positions))
        counts[counts == 0] = 1
        return sums / counts


class FilteringPipeline:
    """Runs one task's full Fig.-1 pipeline over a vectorized corpus."""

    def __init__(self, task: Task, config: PipelineConfig | None = None) -> None:
        self.task = task
        self.config = config or PipelineConfig()
        self._expert = SimulatedAnnotator(
            900 + (0 if task is Task.DOX else 1), EXPERT_PROFILE, self.config.seed
        )

    # -- public -------------------------------------------------------------

    def run(self, vc: VectorizedCorpus) -> PipelineResult:
        cfg = self.config
        task = self.task
        documents = vc.documents
        max_tokens = cfg.max_tokens or TASK_MAX_TOKENS[task]
        view = vc.task_view(max_tokens, cfg.span_strategy)
        rng = child_rng(cfg.seed, "pipeline", task.value)

        sources = TASK_SOURCES[task]
        source_of = np.array(
            [s.value if (s := doc.source) is not None else "" for doc in documents]
        )
        eligible_by_source = {
            source: np.flatnonzero(source_of == source.value) for source in sources
        }

        # Stage 1: seed annotations.
        seed_set = build_seed(documents, task, cfg.seed)
        labels_store: dict[int, bool] = {
            int(p): bool(l) for p, l in zip(seed_set.positions, seed_set.labels)
        }
        crowd_positions: dict[int, bool] = {}

        # Stage 2: initial training.
        model = self._fit(view, labels_store)

        # Stage 3: active learning rounds.
        crowd = CrowdsourcingService(CROWD_PROFILES[task], cfg.seed)
        crowd_batches: list[CrowdsourceResult] = []
        for al_round in range(cfg.al_rounds):
            scores = model.predict_all()
            for source in sources:
                positions = eligible_by_source[source]
                if positions.size == 0:
                    continue
                already = np.array(
                    [i for i, p in enumerate(positions) if int(p) in labels_store],
                    dtype=np.int64,
                )
                local = decile_sample(
                    scores[positions], cfg.al_per_bin,
                    child_rng(cfg.seed, "al", task.value, al_round, source.value),
                    exclude=already if already.size else None,
                )
                if local.size == 0:
                    continue
                chosen = positions[local]
                truths = np.array([documents[p].truth_for(task) for p in chosen])
                result = crowd.annotate_batch(truths)
                crowd_batches.append(result)
                for p, label in zip(chosen, result.labels):
                    labels_store[int(p)] = bool(label)
                    crowd_positions[int(p)] = bool(label)
            model = self._fit(view, labels_store)

        # Stage 4: held-out evaluation (crowd annotations as ground truth,
        # §5.4 — the paper withheld evaluation sets of annotations).
        eval_report, eval_auc = self._evaluate(view, labels_store, crowd_positions, rng)

        # Final model on all annotations; score the whole corpus.
        model = self._fit(view, labels_store)
        scores = model.predict_all()

        # Stages 5-6: thresholds and expert annotation per source.
        caps = dict(cfg.annotation_caps) if cfg.annotation_caps is not None else {
            source: (int(1e12) if row["full"] else int(row["annotated"]))
            for source, row in paper.TABLE4_THRESHOLDS[task].items()
        }
        outcomes: dict[Source, SourceOutcome] = {}
        for source in sources:
            positions = eligible_by_source[source]
            if positions.size == 0:
                continue
            outcomes[source] = self._select_and_annotate(
                source, positions, scores, documents, caps.get(source, int(1e12)), rng
            )

        training_sizes = self._training_sizes(crowd_positions, documents, sources)
        stats = _combine_crowd_stats(crowd_batches)
        return PipelineResult(
            task=task,
            documents=documents,
            outcomes=outcomes,
            eval_report=eval_report,
            eval_auc=eval_auc,
            training_data_sizes=training_sizes,
            annotation_stats=stats,
            scores=scores,
            max_tokens=max_tokens,
        )

    # -- internals ----------------------------------------------------------

    def _fit(self, view: TaskView, labels_store: Mapping[int, bool]) -> FilterModel:
        positions = np.fromiter(labels_store.keys(), dtype=np.int64, count=len(labels_store))
        labels = np.fromiter(labels_store.values(), dtype=bool, count=len(labels_store))
        model = FilterModel(
            view, epochs=self.config.model_epochs, l2=self.config.model_l2,
            seed=self.config.seed,
        )
        return model.fit(positions, labels)

    def _evaluate(
        self,
        view: TaskView,
        labels_store: Mapping[int, bool],
        crowd_positions: Mapping[int, bool],
        rng: np.random.Generator,
    ) -> tuple[Mapping[str, Mapping[str, float]], float]:
        """Hold out a slice of the *crowd-annotated* data for evaluation.

        The seed annotations stay in training (they bootstrapped the
        model); evaluation mirrors the paper's withheld annotation sets.
        """
        eval_pool = np.fromiter(crowd_positions.keys(), dtype=np.int64, count=len(crowd_positions))
        if eval_pool.size < 20:  # degenerate corpora: fall back to everything
            eval_pool = np.fromiter(labels_store.keys(), dtype=np.int64, count=len(labels_store))
        n_eval = max(int(eval_pool.size * self.config.eval_fraction), 10)
        eval_positions = rng.choice(
            eval_pool, size=min(n_eval, eval_pool.size // 2), replace=False
        )
        eval_set = set(int(p) for p in eval_positions)
        train_positions = np.array(
            [p for p in labels_store if p not in eval_set], dtype=np.int64
        )
        train_labels = np.array([labels_store[int(p)] for p in train_positions], dtype=bool)
        if train_labels.all() or not train_labels.any():
            raise RuntimeError("train split lost a class; corpus too small for eval")
        model = FilterModel(
            view, epochs=self.config.model_epochs, l2=self.config.model_l2,
            seed=self.config.seed,
        ).fit(train_positions, train_labels)
        probs = model.predict_docs(eval_positions)
        y_true = np.array([labels_store[int(p)] for p in eval_positions], dtype=bool)
        report = binary_classification_report(
            y_true, probs > 0.5,
            positive_name="positive", negative_name="negative",
        )
        auc = roc_auc(y_true, probs) if y_true.any() and not y_true.all() else float("nan")
        return report, auc

    def _select_and_annotate(
        self,
        source: Source,
        positions: np.ndarray,
        scores: np.ndarray,
        documents: Sequence,
        cap: int,
        rng: np.random.Generator,
    ) -> SourceOutcome:
        source_scores = scores[positions]
        truths = np.array([documents[p].truth_for(self.task) for p in positions])

        def annotate(sample_idx: np.ndarray) -> np.ndarray:
            return self._expert.annotate_many(truths[sample_idx])

        decision = select_threshold(
            source_scores,
            annotate,
            child_rng(self.config.seed, "threshold", self.task.value, source.value),
            grid=self.config.threshold_grid,
            target_precision=self.config.target_precision,
            sample_size=self.config.spot_sample_size,
            annotatable_cap=cap,
        )
        above_local = np.flatnonzero(source_scores > decision.threshold)
        fully = above_local.size <= cap
        if fully:
            annotated_local = above_local
        else:
            annotated_local = np.sort(
                rng.choice(above_local, size=cap, replace=False)
            )
        expert_labels = self._expert.annotate_many(truths[annotated_local])
        tp_local = annotated_local[expert_labels]
        return SourceOutcome(
            source=source,
            threshold=decision.threshold,
            n_above=int(above_local.size),
            n_annotated=int(annotated_local.size),
            n_true_positive=int(tp_local.size),
            fully_annotated=fully,
            above_positions=positions[above_local],
            true_positive_positions=positions[tp_local],
        )

    def _training_sizes(
        self,
        crowd_positions: Mapping[int, bool],
        documents: Sequence,
        sources: Sequence[Source],
    ) -> dict[Source, tuple[int, int]]:
        sizes = {source: [0, 0] for source in sources}
        for position, label in crowd_positions.items():
            source = documents[position].source
            if source in sizes:
                sizes[source][0 if label else 1] += 1
        return {source: (pos, neg) for source, (pos, neg) in sizes.items()}


def _combine_crowd_stats(batches: Sequence[CrowdsourceResult]) -> AnnotationProcessStats:
    if not batches:
        return AnnotationProcessStats(0, 0.0, float("nan"), 0, 0, 0)
    first = np.concatenate([b.first for b in batches])
    second = np.concatenate([b.second for b in batches])
    from repro.nlp.metrics import cohens_kappa  # local to avoid cycle at import

    return AnnotationProcessStats(
        n_documents=int(first.size),
        disagreement_rate=float(np.mean(first != second)),
        kappa=cohens_kappa(first, second),
        n_tiebreaks=sum(b.n_tiebreaks for b in batches),
        n_removed_annotators=max(b.n_removed_annotators for b in batches),
        n_qualification_failures=max(b.n_qualification_failures for b in batches),
    )
