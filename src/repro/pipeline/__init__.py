"""The paper's core contribution: the CTH/dox filtering pipeline (Fig. 1)."""

from repro.pipeline.vectorized import VectorizedCorpus, TaskView
from repro.pipeline.seeds import (
    matches_seed_query,
    cth_seed_candidates,
    build_cth_seed,
    build_dox_seed,
    SeedSet,
)
from repro.pipeline.thresholds import ThresholdDecision, select_threshold, THRESHOLD_GRID
from repro.pipeline.filtering import FilteringPipeline, PipelineConfig, FilterModel
from repro.pipeline.results import PipelineResult, SourceOutcome

__all__ = [
    "VectorizedCorpus",
    "TaskView",
    "matches_seed_query",
    "cth_seed_candidates",
    "build_cth_seed",
    "build_dox_seed",
    "SeedSet",
    "ThresholdDecision",
    "select_threshold",
    "THRESHOLD_GRID",
    "FilteringPipeline",
    "PipelineConfig",
    "FilterModel",
    "PipelineResult",
    "SourceOutcome",
]
