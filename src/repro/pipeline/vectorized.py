"""Shared vectorization layer for the filtering pipelines.

The raw corpus is tokenized exactly once (:class:`VectorizedCorpus`); each
task then derives a :class:`TaskView` — a sparse matrix with one row per
*span* (single full-document span for short documents, up to
``MAX_SPANS_PER_DOC`` windows for long ones) plus the span→document map.
Because hashed features do not depend on the trained model, every
full-corpus prediction pass of the active-learning loop reuses the same
matrix; only the dot product is repeated.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Sequence

import numpy as np
from scipy import sparse

from repro.corpus.documents import Document
from repro.nlp.features import HashingVectorizer
from repro.nlp.spans import SpanStrategy, make_spans
from repro.nlp.tokenize import TokenCache
from repro.util.rng import child_rng


def _compact(matrix: sparse.csr_matrix) -> sparse.csr_matrix:
    """Shrink dtypes: float32 data, int32 indices (halves memory)."""
    matrix.data = matrix.data.astype(np.float32)
    matrix.indices = matrix.indices.astype(np.int32)
    matrix.indptr = matrix.indptr.astype(np.int64)
    return matrix


@dataclasses.dataclass
class TaskView:
    """Span-row matrix and bookkeeping for one task's text-length config."""

    matrix: sparse.csr_matrix  # (n_spans, n_features)
    span_doc: np.ndarray  # span row -> document position (local index)
    n_documents: int
    max_tokens: int
    strategy: SpanStrategy

    def doc_scores(self, span_scores: np.ndarray) -> np.ndarray:
        """Average span scores into document scores."""
        sums = np.bincount(self.span_doc, weights=span_scores, minlength=self.n_documents)
        counts = np.bincount(self.span_doc, minlength=self.n_documents)
        counts[counts == 0] = 1
        return sums / counts

    def rows_for_docs(self, doc_positions: Sequence[int]) -> tuple[sparse.csr_matrix, np.ndarray]:
        """All span rows belonging to ``doc_positions``.

        Returns the row matrix and, aligned with it, the position *within*
        ``doc_positions`` each row belongs to (for label broadcasting).
        """
        doc_positions = np.asarray(doc_positions, dtype=np.int64)
        owner = np.full(self.n_documents, -1, dtype=np.int64)
        owner[doc_positions] = np.arange(doc_positions.size)
        keep = owner[self.span_doc] >= 0
        rows = np.flatnonzero(keep)
        return self.matrix[rows], owner[self.span_doc[rows]]


class VectorizedCorpus:
    """Token cache + hashed features over a fixed document list.

    Features come from the same primitives the streaming scoring core
    uses — :func:`repro.nlp.tokenize.hash_text` per document (via
    :class:`~repro.nlp.tokenize.TokenCache`) and
    :meth:`~repro.nlp.features.HashingVectorizer.transform_hashes` —
    so a batch row and a streaming row for the same short text are
    identical by construction, not by parallel implementations agreeing
    (asserted in ``tests/test_score_core.py``).
    """

    def __init__(
        self,
        documents: Sequence[Document],
        vectorizer: HashingVectorizer | None = None,
        seed: int = 0,
    ) -> None:
        self.documents = list(documents)
        self.vectorizer = vectorizer or HashingVectorizer()
        self.seed = seed
        self.cache = TokenCache(doc.text for doc in self.documents)
        self._views: dict[tuple[int, SpanStrategy], TaskView] = {}
        self._view_lock = threading.Lock()

    def __len__(self) -> int:
        return len(self.documents)

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_view_lock"]  # locks do not pickle; recreated on load
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._view_lock = threading.Lock()

    def task_view(self, max_tokens: int, strategy: SpanStrategy) -> TaskView:
        """Build (or return the cached) span-row matrix for a task config.

        Thread-safe: concurrently-running pipeline stages share one
        vectorized corpus, so the view cache is built under a lock.
        The build itself is deterministic (a named RNG stream per view
        config), so which thread builds a view never changes its content.
        """
        key = (max_tokens, strategy)
        with self._view_lock:
            view = self._views.get(key)
            if view is not None:
                return view
            rng = child_rng(self.seed, "spans", max_tokens, strategy.value)
            arrays = []
            span_doc = []
            for pos, hashes in enumerate(self.cache.arrays):
                for start, end in make_spans(hashes.size, max_tokens, strategy, rng):
                    arrays.append(hashes[start:end])
                    span_doc.append(pos)
            matrix = _compact(self.vectorizer.transform_hashes(arrays))
            view = TaskView(
                matrix=matrix,
                span_doc=np.asarray(span_doc, dtype=np.int64),
                n_documents=len(self.documents),
                max_tokens=max_tokens,
                strategy=strategy,
            )
            self._views[key] = view
            return view

    def drop_view(self, max_tokens: int, strategy: SpanStrategy) -> None:
        """Free a cached view (the matrices are large)."""
        self._views.pop((max_tokens, strategy), None)
