"""Structured pipeline failures."""

from __future__ import annotations

from repro.types import Task


class PipelineError(RuntimeError):
    """A pipeline stage could not proceed.

    Carries enough context to act on: the task whose pipeline failed, the
    offending split sizes, and a remediation hint.  Subclasses
    ``RuntimeError`` so pre-existing handlers keep working.
    """

    def __init__(
        self,
        message: str,
        *,
        task: Task | None = None,
        n_train_positive: int | None = None,
        n_train_negative: int | None = None,
        hint: str | None = None,
    ) -> None:
        self.task = task
        self.n_train_positive = n_train_positive
        self.n_train_negative = n_train_negative
        self.hint = hint
        details = []
        if task is not None:
            details.append(f"task={task.value}")
        if n_train_positive is not None or n_train_negative is not None:
            details.append(
                f"train split: {n_train_positive} positive / {n_train_negative} negative"
            )
        rendered = message
        if details:
            rendered += f" ({'; '.join(details)})"
        if hint:
            rendered += f"; hint: {hint}"
        super().__init__(rendered)
