"""Per-source threshold selection (paper §5.5).

The procedure, exactly as described: start at t = 0.5, manually annotate a
random sample of documents above the threshold to estimate precision; if
precision is too low to make expert annotation worthwhile, raise t and
re-evaluate; once precision is sufficient, probe the next *lower* grid
value — if precision there is similar, keep the lower t for recall.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Sequence

import numpy as np

#: Threshold grid; includes the paper's chosen values (0.5 … 0.935).
THRESHOLD_GRID: tuple[float, ...] = (0.5, 0.6, 0.7, 0.8, 0.9, 0.935, 0.97)


@dataclasses.dataclass(frozen=True)
class ThresholdDecision:
    """Outcome of the threshold search for one (task, source) pair."""

    threshold: float
    n_above: int
    #: (threshold, estimated precision, sample size) per probe, in order.
    history: tuple[tuple[float, float, int], ...]


def select_threshold(
    scores: np.ndarray,
    annotate: Callable[[np.ndarray], np.ndarray],
    rng: np.random.Generator,
    grid: Sequence[float] = THRESHOLD_GRID,
    target_precision: float = 0.90,
    sample_size: int = 150,
    lower_tolerance: float = 0.07,
    min_above: int = 5,
    annotatable_cap: int | None = None,
    workable_precision: float = 0.45,
) -> ThresholdDecision:
    """Run the §5.5 search over ``grid`` for one source.

    ``annotate`` receives candidate indices (into ``scores``) and returns
    expert labels — the pipeline passes a simulated-domain-expert closure,
    so the search consumes annotation budget exactly like the paper's.

    The precision target exists because low precision makes the manual
    annotation budget unworkable; accordingly, when everything above the
    standard 0.5 threshold fits within ``annotatable_cap`` (the paper's
    "size was manageable" case for Discord/Telegram/Gab), any precision
    above ``workable_precision`` is accepted at the lowest threshold.
    """
    scores = np.asarray(scores, dtype=np.float64)
    grid = sorted(grid)
    history: list[tuple[float, float, int]] = []
    precision_at: dict[float, float] = {}

    def probe(threshold: float) -> float:
        if threshold in precision_at:
            return precision_at[threshold]
        above = np.flatnonzero(scores > threshold)
        if above.size == 0:
            precision_at[threshold] = 0.0
            history.append((threshold, 0.0, 0))
            return 0.0
        take = min(sample_size, above.size)
        sample = rng.choice(above, size=take, replace=False)
        labels = np.asarray(annotate(sample), dtype=bool)
        precision = float(labels.mean())
        precision_at[threshold] = precision
        history.append((threshold, precision, take))
        return precision

    # Manageable-volume shortcut: everything above the standard threshold
    # can be expert-annotated, so a workable precision suffices.
    if annotatable_cap is not None:
        base = grid[0]
        if int((scores > base).sum()) <= annotatable_cap and probe(base) >= workable_precision:
            return ThresholdDecision(
                threshold=base,
                n_above=int((scores > base).sum()),
                history=tuple(history),
            )

    # Phase 1: raise until precision is workable (or the grid runs out).
    chosen_idx = 0
    reached_target = False
    for idx, threshold in enumerate(grid):
        chosen_idx = idx
        above_count = int((scores > threshold).sum())
        if above_count < min_above and idx > 0:
            chosen_idx = idx - 1
            break
        if probe(threshold) >= target_precision:
            reached_target = True
            break

    # Phase 2: probe lower values; keep the lowest with similar precision.
    # Only after phase 1 actually reached the target: when the grid was
    # exhausted below target_precision, precision at `chosen` is already
    # poor and "similar" precision at a lower threshold would walk the
    # choice back toward 0.5 and make it strictly worse.
    chosen = grid[chosen_idx]
    while reached_target and chosen_idx > 0:
        lower = grid[chosen_idx - 1]
        if probe(lower) >= precision_at[chosen] - lower_tolerance:
            chosen_idx -= 1
            chosen = lower
        else:
            break

    return ThresholdDecision(
        threshold=chosen,
        n_above=int((scores > chosen).sum()),
        history=tuple(history),
    )
