"""Result containers for pipeline runs (the Fig.-1 funnel accounting)."""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

import numpy as np

from repro.corpus.documents import Document
from repro.types import Source, Task


@dataclasses.dataclass(frozen=True)
class SourceOutcome:
    """Per-source outcome of threshold selection + expert annotation
    (one row of the paper's Table 4)."""

    source: Source
    threshold: float
    n_above: int
    n_annotated: int
    n_true_positive: int
    fully_annotated: bool
    #: Positions (into the pipeline's document list) of docs above threshold.
    above_positions: np.ndarray
    #: Positions of expert-annotated docs confirmed as true positives.
    true_positive_positions: np.ndarray

    @property
    def precision(self) -> float:
        return self.n_true_positive / self.n_annotated if self.n_annotated else 0.0


@dataclasses.dataclass(frozen=True)
class AnnotationProcessStats:
    """Crowdsourcing process statistics across all rounds (paper §5.3)."""

    n_documents: int
    disagreement_rate: float
    kappa: float
    n_tiebreaks: int
    n_removed_annotators: int
    n_qualification_failures: int


@dataclasses.dataclass(frozen=True)
class PipelineResult:
    """Everything one task's pipeline produced."""

    task: Task
    documents: Sequence[Document]
    outcomes: Mapping[Source, SourceOutcome]
    #: Table-3-shaped evaluation report of the final classifier.
    eval_report: Mapping[str, Mapping[str, float]]
    eval_auc: float
    #: Total annotated (positive, negative) training pairs per source
    #: (Table 2), measured on crowdsourced labels.
    training_data_sizes: Mapping[Source, tuple[int, int]]
    annotation_stats: AnnotationProcessStats
    #: Document scores for the entire document list (final model).
    scores: np.ndarray
    #: Text length (max tokens per span) used by the final model.
    max_tokens: int

    @property
    def n_above_total(self) -> int:
        return sum(o.n_above for o in self.outcomes.values())

    @property
    def n_annotated_total(self) -> int:
        return sum(o.n_annotated for o in self.outcomes.values())

    @property
    def n_true_positive_total(self) -> int:
        return sum(o.n_true_positive for o in self.outcomes.values())

    def true_positive_documents(self, source: Source | None = None) -> list[Document]:
        """Expert-confirmed true positives, optionally for one source."""
        docs: list[Document] = []
        for outcome_source, outcome in self.outcomes.items():
            if source is not None and outcome_source is not source:
                continue
            docs.extend(self.documents[p] for p in outcome.true_positive_positions)
        return docs

    def above_threshold_documents(self, source: Source | None = None) -> list[Document]:
        docs: list[Document] = []
        for outcome_source, outcome in self.outcomes.items():
            if source is not None and outcome_source is not source:
                continue
            docs.extend(self.documents[p] for p in outcome.above_positions)
        return docs

    def funnel(self) -> dict[str, int]:
        """Fig.-1 stage counts for this task's pipeline."""
        return {
            "raw_documents": len(self.documents),
            "annotations": self.annotation_stats.n_documents,
            "above_threshold": self.n_above_total,
            "sampled": self.n_annotated_total,
            "true_positive": self.n_true_positive_total,
        }
