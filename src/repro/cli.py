"""Command-line interface.

Subcommands::

    repro generate  --out corpus.jsonl [--tiny/--full] [--seed N]
    repro run       [--tiny/--full] [--seed N] [--report-dir DIR]
    repro study     [--tiny/--full] [--seed N] [--cache-dir DIR]
                    [--jobs N] [--force] [--retries N] [--report-dir DIR]
    repro cache     ls|clear|verify --cache-dir DIR
    repro lint      [paths...] [--select/--ignore IDS] [--baseline FILE]
                    [--update-baseline] [--format text|json|sarif] [--stats]
    repro serve-bench [--tiny/--full] [--seed N] [--shards N]
                    [--batch-size N] [--max-delay-ms F] [--queue-capacity N]
                    [--policy block|drop-oldest|shed-newest] [--rate F]
                    [--burst-every N --burst-size N] [--jobs N]
                    [--check-equivalence] [--report FILE] [--trace-dir DIR]
    repro score-bench [--tiny/--full] [--seed N] [--batch-size N]
                    [--report FILE] [--baseline FILE] [--max-regression F]
                    [--trace-dir DIR]
    repro gateway-bench [--tiny/--full] [--seed N] [--shards N] [--rate F]
                    [--jobs N] [--report FILE] [--baseline FILE]
                    [--max-regression F] [--trace-dir DIR]
    repro obs       report|trace DIR | diff BEFORE AFTER
                    [--max-regression F] [--limit N]
    repro train     --corpus corpus.jsonl --task dox|cth --out model.npz
    repro score     --model model.npz [--text "..."] [--file posts.txt]
    repro assess    --text "..."      (taxonomy coding + PII + harm risks)

``generate`` writes a synthetic corpus as JSONL; ``run`` executes the full
study and prints the paper-vs-measured reports; ``study`` runs the same
study on the staged execution engine — per-stage checkpointing to
``--cache-dir``, a stage thread pool via ``--jobs``, stage retries via
``--retries``, and a wall-time / cache-hit summary table; ``cache``
inspects, integrity-verifies, or empties a stage cache;
``train``/``score`` cover the deployment loop the paper's §3 release
intent describes; ``assess`` runs the rule-based analysis layers on a
single text; ``lint`` runs the static analysis — per-file determinism &
stage-purity rules (DET001–DET003, PUR001–PUR002) plus call-graph-backed
shard-isolation and telemetry merge-contract rules (CONC001–CONC003,
MRG001–MRG003) — and fails on findings not grandfathered in the
committed baseline; ``serve-bench`` trains filters
on one synthetic corpus, replays a second through the sharded
``repro.serve`` runtime under a seeded open-loop load profile, prints an
alert/latency/throughput summary, and writes a machine-readable JSON
report (deterministic — the simulation never reads a wall clock);
``score-bench`` isolates the shared scoring core (``repro.score``) and
reports simulated messages/sec plus a per-component work ledger, with an
optional ``--baseline`` regression gate for CI; ``gateway-bench`` drives
the multi-tenant gateway (``repro.gateway``) through its canonical
auth/quota/throttle overload mix, verifies per-tenant conservation and
the tenant-isolation invariant, and gates against a committed baseline;
``--trace-dir`` on
``study``/``serve-bench``/``score-bench``/``gateway-bench``
additionally saves the run's
deterministic observability bundle (structured trace, Chrome trace-event
export, labeled metrics snapshot, text dashboard), which ``obs``
inspects (``report``/``trace``) and regression-gates run over run
(``diff``).
"""

from __future__ import annotations

import argparse
import pathlib
import sys

import numpy as np


def _add_scale_args(parser: argparse.ArgumentParser) -> None:
    scale = parser.add_mutually_exclusive_group()
    scale.add_argument("--tiny", action="store_true", help="test-scale corpus (seconds)")
    scale.add_argument("--full", action="store_true", help="full-scale corpus (minutes)")
    parser.add_argument("--seed", type=int, default=7)


def _study_config(args):
    from repro.corpus.generator import CorpusConfig
    from repro.lab import StudyConfig
    from repro.pipeline.filtering import PipelineConfig

    if args.full:
        return StudyConfig(
            corpus=CorpusConfig(seed=args.seed),
            pipeline=PipelineConfig(seed=args.seed),
        )
    return StudyConfig.tiny(args.seed)


def cmd_generate(args) -> int:
    from repro.corpus.generator import CorpusBuilder, CorpusConfig
    from repro.corpus.io import write_jsonl
    from repro.corpus.validate import validate_corpus

    config = CorpusConfig(seed=args.seed) if args.full else CorpusConfig.tiny(args.seed)
    corpus = CorpusBuilder(config).build()
    issues = validate_corpus(corpus, strict=True)
    if issues:
        for issue in issues[:20]:
            print(f"validation: {issue}", file=sys.stderr)
        return 1
    count = write_jsonl(corpus, args.out)
    print(f"wrote {count:,} documents to {args.out} (validated)")
    return 0


def cmd_run(args) -> int:
    from repro.analysis.attack_stats import attack_type_table
    from repro.lab import run_study
    from repro.reporting.bundle import generate_report_bundle
    from repro.reporting.tables import render_table3, render_table4, render_table5

    study = run_study(_study_config(args))
    if args.all:
        reports = dict(generate_report_bundle(study))
        # Keep stdout focused on the headline tables even with --all.
        to_print = ("table3_classifier_perf", "table4_thresholds", "table5_attack_types")
    else:
        reports = {
            "table3": render_table3(study.results),
            "table4": render_table4(study.results),
            "table5": render_table5(attack_type_table(study.coded_cth_by_platform)),
        }
        to_print = tuple(reports)
    for name in to_print:
        print(reports[name])
        print()
    if args.report_dir:
        directory = pathlib.Path(args.report_dir)
        directory.mkdir(parents=True, exist_ok=True)
        for name, content in reports.items():
            (directory / f"{name}.txt").write_text(content + "\n")
        print(f"{len(reports)} reports written to {args.report_dir}")
    return 0


def cmd_study(args) -> int:
    from repro.lab import run_study
    from repro.reporting.tables import render_table3, render_table4

    study = run_study(
        _study_config(args),
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        force=args.force,
        retries=args.retries,
        trace_dir=args.trace_dir,
    )
    report = study.run_report
    print(report.render())
    print()
    recovered = f"{report.n_recovered} recovered, " if report.n_recovered else ""
    print(
        f"stages: {report.n_executed} executed, {report.n_cache_hits} cache hits, "
        f"{recovered}{report.total_seconds:.2f}s stage time"
    )
    print()
    print(render_table3(study.results))
    print()
    print(render_table4(study.results))
    if args.report_dir:
        directory = pathlib.Path(args.report_dir)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "stage_summary.txt").write_text(report.render() + "\n")
        (directory / "table3.txt").write_text(render_table3(study.results) + "\n")
        (directory / "table4.txt").write_text(render_table4(study.results) + "\n")
        print(f"\n3 reports written to {args.report_dir}")
    if args.trace_dir:
        print(f"\ntrace dir written to {args.trace_dir}")
    return 0


def cmd_cache(args) -> int:
    from repro.engine import ArtifactStore, verify_cache
    from repro.util.tables import format_table

    store = ArtifactStore(args.cache_dir)
    if args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} cached artifacts from {args.cache_dir}")
        return 0
    if args.action == "verify":
        report = verify_cache(store)
        if not report.findings:
            print(f"cache at {args.cache_dir} is empty")
            return 0
        rows = [(f.filename, f.status) for f in report.findings]
        print(format_table(("artifact", "status"), rows))
        print(
            f"\n{report.count('ok')} ok, {report.count('corrupt')} corrupt, "
            f"{report.count('missing')} missing, "
            f"{report.count('unmanifested')} unmanifested"
        )
        if not report.ok:
            print(
                "corrupt/missing artifacts will be quarantined and recomputed "
                "on the next run that needs them"
            )
            return 1
        return 0
    entries = store.entries()
    if not entries:
        print(f"cache at {args.cache_dir} is empty")
        return 0
    # Stage-sorted, no wall-clock column: two listings of the same cache
    # are byte-identical, so `repro cache ls` output is diffable across
    # runs and machines.
    rows = [(e.stage, e.key[:12], f"{e.n_bytes:,}") for e in entries]
    print(format_table(("stage", "key", "bytes"), rows))
    total = sum(e.n_bytes for e in entries)
    print(f"\n{len(entries)} artifacts, {total:,} bytes")
    return 0


def _parse_rule_list(value: str | None) -> tuple[str, ...] | None:
    if value is None:
        return None
    rules = tuple(part.strip().upper() for part in value.split(",") if part.strip())
    return rules or None


def cmd_lint(args) -> int:
    from repro.analysis.lint import (
        Baseline,
        LintUsageError,
        render_json,
        render_sarif,
        render_text,
        run_lint,
    )

    try:
        result = run_lint(
            args.paths or ["src"],
            select=_parse_rule_list(args.select),
            ignore=_parse_rule_list(args.ignore),
        )
    except LintUsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    findings = result.findings
    if args.stats:
        # stderr so --format json/sarif stdout stays machine-parseable.
        print(result.stats.render(), file=sys.stderr)
    baseline_path = pathlib.Path(args.baseline)
    baseline = Baseline.load(baseline_path)
    if args.update_baseline:
        baseline.updated(findings).save(baseline_path)
        print(
            f"baseline updated: {len(findings)} finding(s) recorded in "
            f"{baseline_path}"
        )
        return 0
    split = baseline.split(findings)
    render = {
        "json": render_json,
        "sarif": render_sarif,
    }.get(args.format, render_text)
    print(render(split.new, stale=split.stale, n_baselined=len(split.baselined)))
    return 1 if split.new else 0


def _serve_models(args):
    """Train CTH/dox filters on a history corpus, return a live stream too.

    History uses ``--seed``, live traffic ``--seed + 1`` — the monitor
    never sees the stream it is scored on during training.
    """
    from repro.corpus.generator import CorpusBuilder, CorpusConfig
    from repro.nlp.features import HashingVectorizer
    from repro.nlp.models.logreg import LogisticRegressionClassifier
    from repro.service.stream import MessageStream
    from repro.types import Platform, Task

    def corpus_config(seed):
        return CorpusConfig(seed=seed) if args.full else CorpusConfig.tiny(seed)

    history = CorpusBuilder(corpus_config(args.seed)).build()
    train_docs = [d for d in history if d.platform is not Platform.BLOGS]
    vectorizer = HashingVectorizer()
    features = vectorizer.transform_texts([d.text for d in train_docs])
    models = {}
    for task in Task:
        labels = np.array([d.truth_for(task) for d in train_docs])
        models[task] = LogisticRegressionClassifier(
            epochs=args.epochs, seed=args.seed
        ).fit(features, labels)
    live = CorpusBuilder(corpus_config(args.seed + 1)).build()
    stream = MessageStream([d for d in live if d.platform is not Platform.BLOGS])
    return models, vectorizer, stream


def cmd_serve_bench(args) -> int:
    import json

    from repro.serve import (
        BackpressurePolicy,
        KillSpec,
        LoadProfile,
        RebalanceSchedule,
        ServeConfig,
        ServingRuntime,
        alert_sort_key,
    )
    from repro.service.monitor import HarassmentMonitor, MonitorConfig
    from repro.types import Task
    from repro.util.tables import format_table

    models, vectorizer, stream = _serve_models(args)
    monitor_config = MonitorConfig(
        campaign_min_messages=args.campaign_min_messages
    )

    def monitor_factory():
        return HarassmentMonitor(
            models[Task.CTH], models[Task.DOX], vectorizer, monitor_config
        )

    config = ServeConfig(
        n_shards=args.shards,
        batch_size=args.batch_size,
        max_delay_seconds=args.max_delay_ms / 1000.0,
        queue_capacity=args.queue_capacity,
        policy=BackpressurePolicy(args.policy),
        ring_vnodes=args.ring_vnodes,
        hot_key_share=args.hot_key_share,
    )
    schedule = (
        RebalanceSchedule.parse(args.rebalance_schedule)
        if args.rebalance_schedule else None
    )
    kill = (
        KillSpec.parse(args.kill_shard, args.kill_at)
        if args.kill_shard else None
    )
    profile = LoadProfile(
        rate_per_second=args.rate,
        burst_every=args.burst_every,
        burst_size=args.burst_size,
        seed=args.seed,
    )
    recorder = None
    if args.trace_dir:
        from repro.obs import RunObserver

        recorder = RunObserver("serve-bench")
    runtime = ServingRuntime(monitor_factory, config)
    result = runtime.serve_stream(
        stream, profile, jobs=args.jobs, recorder=recorder,
        schedule=schedule, kill=kill,
    )
    report = result.as_dict()
    report["load"] = {
        "rate_per_second": profile.rate_per_second,
        "burst_every": profile.burst_every,
        "burst_size": profile.burst_size,
        "seed": profile.seed,
        "n_messages": len(stream),
    }

    if args.check_equivalence:
        baseline = sorted(
            monitor_factory().run(stream, batch_size=args.batch_size),
            key=alert_sort_key,
        )
        if config.policy is not BackpressurePolicy.BLOCK:
            report["equivalence"] = "skipped (lossy policy)"
        elif result.alerts == baseline:
            report["equivalence"] = "ok"
        else:
            report["equivalence"] = "FAILED"
    else:
        report["equivalence"] = "unchecked"

    print(
        f"served {len(stream):,} messages on {config.n_shards} shard(s) "
        f"[policy={config.policy.value}, batch={config.batch_size}, "
        f"rate={profile.rate_per_second:g}/s]\n"
    )
    if result.hot_keys:
        shares = ", ".join(
            f"{key} ({share:.1%})" for key, share in result.hot_keys.items()
        )
        print(f"hot keys split over salted sub-keys: {shares}")
    for change in result.rebalances:
        print(
            f"rebalance at t={change['time']:.2f}s: "
            f"{change['shards_before']} -> {change['shards_after']} "
            f"({change['migrated_handles']} handles migrated)"
        )
    if result.failover:
        print(
            f"failover at t={result.failover['time']:.2f}s: killed shard "
            f"{result.failover['killed_shard']}, requeued "
            f"{result.failover['requeued_messages']} messages, migrated "
            f"{result.failover['migrated_handles']} handles"
        )
    if result.hot_keys or result.rebalances or result.failover:
        print()
    print(format_table(
        ("alert kind", "count"),
        sorted(result.alert_counts().items()) or [("(none)", 0)],
        title="Alerts",
    ))
    print()
    merged_service = result.telemetry.merged_service_time()
    merged_wait = result.telemetry.merged_queue_wait()
    rows = []
    for shard in result.telemetry.shards:
        acct = shard.queue
        rows.append((
            f"shard {shard.shard_id}", shard.messages_scored, shard.batches,
            acct.shed, acct.dropped, acct.max_depth,
            f"{shard.service_time.quantile(0.5) * 1e3:.2f}",
            f"{shard.service_time.quantile(0.99) * 1e3:.2f}",
        ))
    rows.append((
        "fleet", result.telemetry.messages_scored,
        sum(s.batches for s in result.telemetry.shards),
        sum(s.queue.shed for s in result.telemetry.shards),
        sum(s.queue.dropped for s in result.telemetry.shards),
        max((s.queue.max_depth for s in result.telemetry.shards), default=0),
        f"{merged_service.quantile(0.5) * 1e3:.2f}",
        f"{merged_service.quantile(0.99) * 1e3:.2f}",
    ))
    print(format_table(
        ("", "scored", "batches", "shed", "dropped", "max depth",
         "p50 ms", "p99 ms"),
        rows,
        title="Shards",
    ))
    print()
    print(
        f"throughput: {result.telemetry.throughput_per_second:,.0f} msg/s "
        f"over {result.telemetry.makespan_seconds:.2f}s simulated; "
        f"queue wait p95 {merged_wait.quantile(0.95) * 1e3:.2f} ms; "
        f"service p50/p95/p99 "
        f"{merged_service.quantile(0.5) * 1e3:.2f}/"
        f"{merged_service.quantile(0.95) * 1e3:.2f}/"
        f"{merged_service.quantile(0.99) * 1e3:.2f} ms; "
        f"load skew (max/mean): {result.telemetry.load_skew:.3f}x; "
        f"unaccounted messages: {result.unaccounted}"
    )
    print(f"equivalence vs single monitor: {report['equivalence']}")

    report_path = pathlib.Path(args.report)
    report_path.parent.mkdir(parents=True, exist_ok=True)
    report_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"report written to {report_path}")
    if recorder is not None:
        recorder.save(args.trace_dir)
        print(f"trace dir written to {args.trace_dir}")
    if report["equivalence"] == "FAILED" or result.unaccounted:
        return 1
    return 0


def cmd_score_bench(args) -> int:
    import json
    import time

    from repro.score import ScoringCore, compare_reports, run_score_bench
    from repro.types import Task
    from repro.util.tables import format_table

    models, vectorizer, stream = _serve_models(args)
    core = ScoringCore(models[Task.CTH], models[Task.DOX], vectorizer)
    recorder = None
    if args.trace_dir:
        from repro.obs import RunObserver

        recorder = RunObserver("score-bench")
    wall_start = time.perf_counter()
    result = run_score_bench(
        core, stream, batch_size=args.batch_size, recorder=recorder
    )
    wall_seconds = time.perf_counter() - wall_start
    report = result.as_dict()

    print(
        f"scored {result.n_messages:,} messages in {result.n_batches:,} "
        f"batches of {result.batch_size} "
        f"({result.distinct_texts:,} distinct texts)\n"
    )
    work = result.work
    print(format_table(
        ("component", "ran", "cache hits", "simulated s"),
        [
            (
                "tokenize", work.tokenized_messages, work.token_cache_hits,
                f"{result.breakdown['tokenize_seconds']:.4f}",
            ),
            (
                "score", work.messages, "-",
                f"{result.breakdown['score_seconds']:.4f}",
            ),
            (
                "extract", work.extracted_messages, work.extraction_cache_hits,
                f"{result.breakdown['extract_seconds']:.4f}",
            ),
            ("code", work.coded_messages, work.coding_cache_hits, "-"),
            ("state", "-", "-", f"{result.breakdown['state_seconds']:.4f}"),
        ],
        title="Scoring work",
    ))
    print()
    print(
        f"simulated throughput: {result.messages_per_second:,.0f} msg/s "
        f"over {result.simulated_seconds:.4f}s simulated; "
        f"extractions/message: {result.extractions_per_message:.3f}; "
        f"detections: {result.detections:,}"
    )
    # Wall-clock throughput is stdout-only colour; the JSON report stays
    # fully deterministic so the committed baseline is byte-diffable.
    if wall_seconds > 0:
        print(
            f"wall-clock: {result.n_messages / wall_seconds:,.0f} msg/s "
            f"({wall_seconds:.2f}s)"
        )

    report_path = pathlib.Path(args.report)
    report_path.parent.mkdir(parents=True, exist_ok=True)
    report_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"report written to {report_path}")
    if recorder is not None:
        recorder.save(args.trace_dir)
        print(f"trace dir written to {args.trace_dir}")

    if args.baseline:
        baseline_path = pathlib.Path(args.baseline)
        if not baseline_path.exists():
            print(f"error: baseline {baseline_path} not found", file=sys.stderr)
            return 2
        baseline = json.loads(baseline_path.read_text())
        failures = compare_reports(
            report, baseline, max_regression=args.max_regression
        )
        if failures:
            for failure in failures:
                print(f"GATE FAILED [{failure.check}]: {failure.detail}")
            return 1
        print(
            f"gate ok vs {baseline_path} "
            f"(tolerance {args.max_regression:.0%})"
        )
    return 0


def cmd_gateway_bench(args) -> int:
    import json

    from repro.gateway import compare_gateway_reports, run_gateway_bench
    from repro.service.monitor import HarassmentMonitor, MonitorConfig
    from repro.types import Task
    from repro.util.tables import format_table

    models, vectorizer, stream = _serve_models(args)
    monitor_config = MonitorConfig(
        campaign_min_messages=args.campaign_min_messages
    )

    def monitor_factory():
        return HarassmentMonitor(
            models[Task.CTH], models[Task.DOX], vectorizer, monitor_config
        )

    recorder = None
    if args.trace_dir:
        from repro.obs import RunObserver

        recorder = RunObserver("gateway-bench")
    report, gateway, result = run_gateway_bench(
        monitor_factory,
        stream,
        seed=args.seed,
        shards=args.shards,
        jobs=args.jobs,
        rate=args.rate,
        recorder=recorder,
    )

    fleet = report["fleet"]
    print(
        f"gateway served {fleet['admitted']:,}/{fleet['offered']:,} offered "
        f"messages on {args.shards} shard(s) "
        f"[rate={args.rate:g}/s, jobs={args.jobs}]\n"
    )
    rows = []
    for tenant in sorted(report["tenants"]):
        entry = report["tenants"][tenant]
        admission = entry["admission"]
        rows.append((
            tenant + ("" if entry["registered"] else " (unregistered)"),
            admission["offered"],
            admission["admitted"],
            admission["throttled_tenant"],
            admission["throttled_fleet"],
            admission["rejected_auth"],
            admission["rejected_quota"],
            entry["alerts"]["delivered"],
            f"{entry['feed_latency']['p95_s'] * 1e3:.1f}",
        ))
    print(format_table(
        ("tenant", "offered", "admitted", "thr(tenant)", "thr(fleet)",
         "rej(auth)", "rej(quota)", "delivered", "p95 ms"),
        rows,
        title="Tenants",
    ))
    print()
    print(
        f"throughput: {fleet['throughput_per_second']:,.0f} msg/s over "
        f"{fleet['makespan_seconds']:.2f}s simulated; load skew "
        f"{fleet['load_skew']:.3f}x; fairness skew "
        f"{fleet['fairness_skew']:.3f}; conservation "
        f"{'ok' if fleet['conservation_ok'] else 'VIOLATED'}; "
        f"isolation vs solo monitors: {report['isolation']}"
    )

    report_path = pathlib.Path(args.report)
    report_path.parent.mkdir(parents=True, exist_ok=True)
    report_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"report written to {report_path}")
    if recorder is not None:
        recorder.save(args.trace_dir)
        print(f"trace dir written to {args.trace_dir}")

    if not fleet["conservation_ok"] or report["isolation"] == "FAILED":
        return 1
    if args.baseline:
        baseline_path = pathlib.Path(args.baseline)
        if not baseline_path.exists():
            print(f"error: baseline {baseline_path} not found", file=sys.stderr)
            return 2
        baseline = json.loads(baseline_path.read_text())
        failures = compare_gateway_reports(
            report, baseline, max_regression=args.max_regression
        )
        if failures:
            for failure in failures:
                print(f"GATE FAILED [{failure.check}]: {failure.detail}")
            return 1
        print(
            f"gate ok vs {baseline_path} "
            f"(tolerance {args.max_regression:.0%})"
        )
    return 0


def cmd_obs(args) -> int:
    from repro.obs import DASHBOARD_FILE, diff_runs, load_run
    from repro.util.tables import format_table

    try:
        if args.action == "diff":
            before = load_run(args.before)
            after = load_run(args.after)
        else:
            artifacts = load_run(args.trace_dir)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.action == "report":
        manifest = artifacts.manifest
        print(
            f"run {artifacts.run!r} at {artifacts.path} "
            f"({manifest.get('records', 0):,} trace records, "
            f"{manifest.get('metric_families', 0)} metric families)\n"
        )
        dashboard = artifacts.path / DASHBOARD_FILE
        if dashboard.exists():
            print(dashboard.read_text(), end="")
        else:
            print("(no dashboard in this trace dir)")
        return 0

    if args.action == "trace":
        records = artifacts.trace_records()
        if not records:
            print("(empty trace)")
            return 0
        summary: dict[str, dict[str, float]] = {}
        for record in records:
            entry = summary.setdefault(
                record["name"], {"spans": 0, "events": 0, "total_s": 0.0}
            )
            if record["type"] == "span":
                entry["spans"] += 1
                entry["total_s"] += record["end"] - record["start"]
            else:
                entry["events"] += 1
        rows = [
            (
                name,
                f"{entry['spans']:,.0f}",
                f"{entry['events']:,.0f}",
                f"{entry['total_s']:.6f}",
            )
            for name, entry in sorted(summary.items())
        ]
        print(format_table(
            ("name", "spans", "events", "total s"), rows, title="Trace summary"
        ))
        print()
        shown = records if args.limit is None else records[: args.limit]
        for record in shown:
            if record["type"] == "span":
                line = (
                    f"[{record['seq']:>6}] span  {record['name']:<12} "
                    f"{record['start']:.6f} -> {record['end']:.6f}"
                )
            else:
                line = (
                    f"[{record['seq']:>6}] event {record['name']:<12} "
                    f"@ {record['ts']:.6f}"
                )
            labels = record.get("labels") or {}
            if labels:
                line += "  " + ",".join(f"{k}={labels[k]}" for k in sorted(labels))
            print(line)
        if args.limit is not None and len(records) > args.limit:
            print(f"... {len(records) - args.limit:,} more records")
        print(f"\nchrome trace: {artifacts.chrome_trace_path()}")
        return 0

    # diff
    report = diff_runs(before, after, max_regression=args.max_regression)
    changed = [d for d in report.deltas if d.changed]
    if not changed:
        print(
            f"no metric changes between {before.path} and {after.path} "
            f"({len(report.deltas)} series compared)"
        )
        return 0
    rows = []
    for delta in changed[: args.limit] if args.limit else changed:
        pct = f"{delta.pct:+.1%}" if delta.pct is not None else "-"
        rows.append((
            delta.metric,
            delta.labels,
            "-" if delta.before is None else f"{delta.before:,.6g}",
            "-" if delta.after is None else f"{delta.after:,.6g}",
            pct,
        ))
    print(format_table(
        ("metric", "labels", "before", "after", "pct"),
        rows,
        title=f"Changed series ({report.n_changed} of {len(report.deltas)})",
    ))
    if args.limit and len(changed) > args.limit:
        print(f"... {len(changed) - args.limit:,} more changed series")
    print()
    if report.regressions:
        for regression in report.regressions:
            print(f"GATE FAILED: {regression.describe()}")
        return 1
    print(
        f"gate ok: no tracked throughput dropped more than "
        f"{args.max_regression:.0%}"
    )
    return 0


def _parse_jobs(value: str) -> int:
    jobs = int(value)
    if jobs < 1:
        raise argparse.ArgumentTypeError(f"--jobs must be >= 1, got {jobs}")
    return jobs


def _parse_retries(value: str) -> int:
    retries = int(value)
    if retries < 0:
        raise argparse.ArgumentTypeError(f"--retries must be >= 0, got {retries}")
    return retries


def _parse_task(value: str):
    from repro.types import Task

    normalized = value.lower()
    if normalized in ("dox", "doxing"):
        return Task.DOX
    if normalized in ("cth", "call_to_harassment", "harassment"):
        return Task.CTH
    raise argparse.ArgumentTypeError(f"unknown task: {value} (use dox|cth)")


def cmd_train(args) -> int:
    from repro.corpus.io import iter_jsonl
    from repro.nlp.features import HashingVectorizer
    from repro.nlp.models.logreg import LogisticRegressionClassifier
    from repro.nlp.serialize import save_filter_model

    documents = list(iter_jsonl(args.corpus))
    if not documents:
        print("error: corpus is empty", file=sys.stderr)
        return 2
    labels = np.array([d.truth_for(args.task) for d in documents])
    vectorizer = HashingVectorizer()
    features = vectorizer.transform_texts([d.text for d in documents])
    model = LogisticRegressionClassifier(epochs=args.epochs, seed=args.seed)
    model.fit(features, labels)
    save_filter_model(
        args.out, model, vectorizer,
        metadata={"task": args.task.value, "trained_on": str(args.corpus)},
    )
    print(f"trained {args.task.value} model on {len(documents):,} documents -> {args.out}")
    return 0


def cmd_score(args) -> int:
    from repro.nlp.serialize import load_filter_model

    model, vectorizer, metadata = load_filter_model(args.model)
    if args.text is not None:
        texts = [args.text]
    elif args.file:
        texts = [
            line.rstrip("\n")
            for line in pathlib.Path(args.file).read_text().splitlines()
            if line.strip()
        ]
    else:
        texts = [line.rstrip("\n") for line in sys.stdin if line.strip()]
    if not texts:
        print("error: nothing to score", file=sys.stderr)
        return 2
    scores = model.predict_proba(vectorizer.transform_texts(texts))
    task = metadata.get("task", "unknown-task")
    for text, score in zip(texts, scores):
        print(f"{score:.4f}\t[{task}]\t{text[:80]}")
    return 0


def cmd_assess(args) -> int:
    from repro.analysis.harm_risk_stats import detect_reputation_info
    from repro.extraction.gender import infer_gender
    from repro.extraction.pii import extract_pii
    from repro.pipeline.seeds import matches_seed_query
    from repro.taxonomy.coding import ExpertCoder
    from repro.taxonomy.harm_risk import harm_risks_for_dox

    from repro.taxonomy.attack_types import PARENT_OF
    from repro.taxonomy.definitions import DEFINITIONS

    text = args.text
    print(f"text: {text[:120]!r}")
    print(f"matches mobilising keyword query: {matches_seed_query(text)}")
    subtypes = ExpertCoder().code_text(text)
    print(f"taxonomy coding: {', '.join(str(s) for s in subtypes)}")
    for parent in dict.fromkeys(PARENT_OF[s] for s in subtypes):
        print(f"  {parent.value}: {DEFINITIONS[parent].definition}")
    pii = extract_pii(text)
    print(f"PII found: {', '.join(pii) if pii else 'none'}")
    risks = harm_risks_for_dox(pii, detect_reputation_info(text))
    print(f"harm risks: {', '.join(sorted(str(r) for r in risks)) or 'none'}")
    print(f"inferred target gender: {infer_gender(text)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the IMC'21 incitements-to-harassment study",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_generate = sub.add_parser("generate", help="write a synthetic corpus as JSONL")
    _add_scale_args(p_generate)
    p_generate.add_argument("--out", required=True)
    p_generate.set_defaults(func=cmd_generate)

    p_run = sub.add_parser("run", help="run the full study and print reports")
    _add_scale_args(p_run)
    p_run.add_argument("--report-dir", default=None)
    p_run.add_argument(
        "--all", action="store_true",
        help="generate the complete report bundle (every table/figure)",
    )
    p_run.set_defaults(func=cmd_run)

    p_study = sub.add_parser(
        "study", help="run the study on the staged execution engine"
    )
    _add_scale_args(p_study)
    p_study.add_argument(
        "--cache-dir", default=None,
        help="checkpoint stage artifacts here; a warm re-run executes zero stages",
    )
    p_study.add_argument(
        "--jobs", type=_parse_jobs, default=1,
        help="stage thread pool size (independent stages run concurrently)",
    )
    p_study.add_argument(
        "--force", action="store_true",
        help="re-run every stage even when its artifact is cached",
    )
    p_study.add_argument(
        "--retries", type=_parse_retries, default=0,
        help="re-execute a transiently failing stage up to N extra times",
    )
    p_study.add_argument("--report-dir", default=None)
    p_study.add_argument(
        "--trace-dir", default=None,
        help="save the deterministic observability bundle (repro obs) here",
    )
    p_study.set_defaults(func=cmd_study)

    p_cache = sub.add_parser(
        "cache", help="inspect, verify, or empty a stage cache"
    )
    p_cache.add_argument("action", choices=("ls", "clear", "verify"))
    p_cache.add_argument("--cache-dir", required=True)
    p_cache.set_defaults(func=cmd_cache)

    p_lint = sub.add_parser(
        "lint", help="determinism, stage-purity & shard-contract static analysis"
    )
    p_lint.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: src)",
    )
    p_lint.add_argument(
        "--select", default=None,
        help="comma-separated rule ids or family prefixes to run "
        "(e.g. DET001 or CONC,MRG; default: all)",
    )
    p_lint.add_argument(
        "--ignore", default=None,
        help="comma-separated rule ids or family prefixes to skip",
    )
    p_lint.add_argument(
        "--baseline", default=".repro-lint-baseline.json",
        help="JSON baseline of grandfathered findings",
    )
    p_lint.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to cover current findings "
        "(expires entries whose finding was fixed)",
    )
    p_lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (json for the CI gate, sarif for PR annotation)",
    )
    p_lint.add_argument(
        "--stats", action="store_true",
        help="print file/parse/rule timing and call-graph build counts "
        "to stderr",
    )
    p_lint.set_defaults(func=cmd_lint)

    p_serve = sub.add_parser(
        "serve-bench",
        help="benchmark the sharded serving runtime on a synthetic stream",
    )
    _add_scale_args(p_serve)
    p_serve.add_argument(
        "--shards", type=_parse_jobs, default=4, dest="shards",
        help="number of worker shards (consistent-hash ring routing)",
    )
    p_serve.add_argument(
        "--batch-size", type=_parse_jobs, default=64,
        help="micro-batch flush size",
    )
    p_serve.add_argument(
        "--max-delay-ms", type=float, default=50.0,
        help="micro-batch flush deadline (simulated milliseconds)",
    )
    p_serve.add_argument(
        "--queue-capacity", type=_parse_jobs, default=512,
        help="bounded per-shard queue capacity (>= batch size)",
    )
    p_serve.add_argument(
        "--policy", choices=("block", "drop-oldest", "shed-newest"),
        default="block",
        help="overload behaviour when a shard queue is full",
    )
    p_serve.add_argument(
        "--rate", type=float, default=2000.0,
        help="open-loop arrival rate (messages per simulated second)",
    )
    p_serve.add_argument(
        "--burst-every", type=int, default=0,
        help="inject a burst after every N regular arrivals (0 = off)",
    )
    p_serve.add_argument(
        "--burst-size", type=int, default=0,
        help="messages per injected burst (arrive simultaneously)",
    )
    p_serve.add_argument(
        "--jobs", type=_parse_jobs, default=1,
        help="simulate shards on a thread pool (identical results)",
    )
    p_serve.add_argument(
        "--epochs", type=int, default=5,
        help="training epochs for the benchmark filter models",
    )
    p_serve.add_argument(
        "--campaign-min-messages", type=int, default=2,
        help="campaign alert threshold for the benchmark monitors",
    )
    p_serve.add_argument(
        "--check-equivalence", action="store_true",
        help="also run a single monitor and verify merged alerts match",
    )
    p_serve.add_argument(
        "--rebalance-schedule", default=None, metavar="SPEC",
        help="serve in epochs with ring resizes at each boundary: "
        "comma-separated shard counts ('2,4,3'), or 'auto:N' for N "
        "epochs of telemetry-planned rebalancing",
    )
    p_serve.add_argument(
        "--kill-shard", default=None, metavar="SHARD",
        help="kill one shard mid-run and fail its queue and target "
        "state over to the survivors: a shard id, or 'hottest'",
    )
    p_serve.add_argument(
        "--kill-at", type=float, default=0.5, metavar="FRACTION",
        help="stream fraction at which --kill-shard fires (0 < f < 1)",
    )
    p_serve.add_argument(
        "--hot-key-share", type=float, default=0.02,
        help="traffic share at which a routing key is split over "
        "salted sub-keys (0 disables hot-key splitting)",
    )
    p_serve.add_argument(
        "--ring-vnodes", type=_parse_jobs, default=128,
        help="virtual nodes per shard on the consistent-hash ring",
    )
    p_serve.add_argument(
        "--report", default="benchmarks/reports/BENCH_serve.json",
        help="write the machine-readable JSON report here",
    )
    p_serve.add_argument(
        "--trace-dir", default=None,
        help="save the deterministic observability bundle (repro obs) here",
    )
    p_serve.set_defaults(func=cmd_serve_bench)

    p_score_bench = sub.add_parser(
        "score-bench",
        help="microbenchmark the shared scoring core (messages/sec)",
    )
    _add_scale_args(p_score_bench)
    p_score_bench.add_argument(
        "--batch-size", type=_parse_jobs, default=64,
        help="messages scored per core call",
    )
    p_score_bench.add_argument(
        "--epochs", type=int, default=5,
        help="training epochs for the benchmark filter models",
    )
    p_score_bench.add_argument(
        "--report", default="benchmarks/reports/BENCH_score.json",
        help="write the deterministic JSON report here",
    )
    p_score_bench.add_argument(
        "--baseline", default=None,
        help="compare against this committed report and fail on regression",
    )
    p_score_bench.add_argument(
        "--max-regression", type=float, default=0.02,
        help="allowed fractional throughput drop vs the baseline",
    )
    p_score_bench.add_argument(
        "--trace-dir", default=None,
        help="save the deterministic observability bundle (repro obs) here",
    )
    p_score_bench.set_defaults(func=cmd_score_bench)

    p_gateway = sub.add_parser(
        "gateway-bench",
        help="benchmark the multi-tenant gateway (auth, quotas, feeds)",
    )
    _add_scale_args(p_gateway)
    p_gateway.add_argument(
        "--shards", type=_parse_jobs, default=4,
        help="number of worker shards behind the gateway",
    )
    p_gateway.add_argument(
        "--rate", type=float, default=2000.0,
        help="open-loop arrival rate (messages per simulated second)",
    )
    p_gateway.add_argument(
        "--jobs", type=_parse_jobs, default=1,
        help="simulate shards on a thread pool (identical results)",
    )
    p_gateway.add_argument(
        "--epochs", type=int, default=5,
        help="training epochs for the benchmark filter models",
    )
    p_gateway.add_argument(
        "--campaign-min-messages", type=int, default=2,
        help="campaign alert threshold for the benchmark monitors",
    )
    p_gateway.add_argument(
        "--report", default="benchmarks/reports/BENCH_gateway.json",
        help="write the deterministic JSON report here",
    )
    p_gateway.add_argument(
        "--baseline", default=None,
        help="compare against this committed report and fail on regression",
    )
    p_gateway.add_argument(
        "--max-regression", type=float, default=0.02,
        help="allowed fractional throughput drop vs the baseline",
    )
    p_gateway.add_argument(
        "--trace-dir", default=None,
        help="save the deterministic observability bundle (repro obs) here",
    )
    p_gateway.set_defaults(func=cmd_gateway_bench)

    p_obs = sub.add_parser(
        "obs", help="inspect and diff deterministic observability bundles"
    )
    obs_sub = p_obs.add_subparsers(dest="action", required=True)
    p_obs_report = obs_sub.add_parser(
        "report", help="print a trace dir's metrics dashboard"
    )
    p_obs_report.add_argument("trace_dir")
    p_obs_report.set_defaults(func=cmd_obs)
    p_obs_trace = obs_sub.add_parser(
        "trace", help="summarize and list a trace dir's records"
    )
    p_obs_trace.add_argument("trace_dir")
    p_obs_trace.add_argument(
        "--limit", type=int, default=30,
        help="records to list after the summary (0 = summary only)",
    )
    p_obs_trace.set_defaults(func=cmd_obs)
    p_obs_diff = obs_sub.add_parser(
        "diff", help="compare two trace dirs' metric snapshots"
    )
    p_obs_diff.add_argument("before")
    p_obs_diff.add_argument("after")
    p_obs_diff.add_argument(
        "--max-regression", type=float, default=0.02,
        help="allowed fractional drop in tracked throughput gauges",
    )
    p_obs_diff.add_argument(
        "--limit", type=int, default=40,
        help="changed series to list (0 = all)",
    )
    p_obs_diff.set_defaults(func=cmd_obs)

    p_train = sub.add_parser("train", help="train a filter model from a JSONL corpus")
    p_train.add_argument("--corpus", required=True)
    p_train.add_argument("--task", type=_parse_task, required=True)
    p_train.add_argument("--out", required=True)
    p_train.add_argument("--epochs", type=int, default=6)
    p_train.add_argument("--seed", type=int, default=7)
    p_train.set_defaults(func=cmd_train)

    p_score = sub.add_parser("score", help="score texts with a saved model")
    p_score.add_argument("--model", required=True)
    p_score.add_argument("--text", default=None)
    p_score.add_argument("--file", default=None)
    p_score.set_defaults(func=cmd_score)

    p_assess = sub.add_parser("assess", help="taxonomy + PII + harm-risk for one text")
    p_assess.add_argument("--text", required=True)
    p_assess.set_defaults(func=cmd_assess)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
