"""Repeated-dox linking via shared social-media handles (paper §7.3).

Two doxes are "repeated" when they contain the same social-media profile
(Facebook, Instagram, Twitter, or YouTube) — the paper found OSN accounts
the most reliable linking key.  The analysis runs over the complete
above-threshold dox sets, as in the paper.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

from repro.corpus.documents import Document
from repro.extraction.pii import extract_pii
from repro.types import Platform

OSN_CATEGORIES = ("facebook", "instagram", "twitter", "youtube")


@dataclasses.dataclass(frozen=True)
class RepeatedDoxStats:
    n_documents: int
    repeated_count: int
    same_platform_repeat_count: int
    cross_posted_count: int  # repeated docs whose handle appears on >1 platform
    repeated_by_platform: Mapping[Platform, int]

    @property
    def repeated_share(self) -> float:
        return self.repeated_count / self.n_documents if self.n_documents else 0.0

    @property
    def same_platform_share(self) -> float:
        if self.repeated_count == 0:
            return 0.0
        return self.same_platform_repeat_count / self.repeated_count


def repeated_dox_analysis(documents: Sequence[Document]) -> RepeatedDoxStats:
    """Link doxes by shared OSN handles and tabulate repeats."""
    # handle key -> list of (document index, platform)
    handle_docs: dict[tuple[str, str], list[int]] = {}
    doc_handles: list[list[tuple[str, str]]] = []
    for i, doc in enumerate(documents):
        extracted = extract_pii(doc.text)
        handles = [
            (category, value.lower())
            for category in OSN_CATEGORIES
            for value in extracted.get(category, ())
        ]
        doc_handles.append(handles)
        for key in handles:
            handle_docs.setdefault(key, []).append(i)

    repeated_flags = [False] * len(documents)
    cross_posted_flags = [False] * len(documents)
    same_platform_flags = [False] * len(documents)
    for key, doc_ids in handle_docs.items():
        if len(doc_ids) < 2:
            continue
        platforms = {documents[i].platform for i in doc_ids}
        for i in doc_ids:
            repeated_flags[i] = True
            if len(platforms) > 1:
                cross_posted_flags[i] = True
            if sum(1 for j in doc_ids if documents[j].platform is documents[i].platform) > 1:
                same_platform_flags[i] = True

    repeated_by_platform: dict[Platform, int] = {}
    for i, flag in enumerate(repeated_flags):
        if flag:
            platform = documents[i].platform
            repeated_by_platform[platform] = repeated_by_platform.get(platform, 0) + 1
    return RepeatedDoxStats(
        n_documents=len(documents),
        repeated_count=sum(repeated_flags),
        same_platform_repeat_count=sum(same_platform_flags),
        cross_posted_count=sum(cross_posted_flags),
        repeated_by_platform=repeated_by_platform,
    )
