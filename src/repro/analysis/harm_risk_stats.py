"""Harm-risk labelling and overlap of annotated doxes (paper §7.2, Fig. 2)."""

from __future__ import annotations

import dataclasses
import re
from typing import Mapping, Sequence

from repro.corpus.documents import Document
from repro.extraction.pii import pii_categories_present
from repro.taxonomy.harm_risk import HarmRisk, harm_risks_for_dox
from repro.types import Platform, Source

#: Reputation risk cannot be inferred from extracted PII; the paper used
#: manual annotation.  The stand-in detects the same signals the experts
#: read: named family members or an employer in the dox text.
_REPUTATION_RE = re.compile(
    r"\b(?:works at|employer|job|family|relatives|next of kin|"
    r"boss|workplace|place of employment)\s*[:\-]",
    re.IGNORECASE,
)


def detect_reputation_info(text: str) -> bool:
    """Manual-annotation stand-in for the Table 7 reputation signal."""
    return bool(_REPUTATION_RE.search(text))


def harm_risks_for_document(doc: Document) -> frozenset[HarmRisk]:
    """Harm risks of one dox from extracted PII + the reputation signal."""
    return harm_risks_for_dox(
        pii_categories_present(doc.text), detect_reputation_info(doc.text)
    )


@dataclasses.dataclass(frozen=True)
class HarmRiskOverlap:
    """Figure-2-shaped overlap structure."""

    n_documents: int
    totals: Mapping[HarmRisk, int]
    #: combination (frozenset of risks) -> document count; includes the
    #: empty combination (doxes with no risk indicator at all).
    combinations: Mapping[frozenset, int]
    #: combination -> count of documents from the pastes platform.
    combination_pastes: Mapping[frozenset, int]

    @property
    def all_four_count(self) -> int:
        return self.combinations.get(frozenset(HarmRisk), 0)

    @property
    def all_four_share(self) -> float:
        return self.all_four_count / self.n_documents if self.n_documents else 0.0

    @property
    def all_four_pastes_share(self) -> float:
        total = self.all_four_count
        if total == 0:
            return 0.0
        return self.combination_pastes.get(frozenset(HarmRisk), 0) / total

    def no_risk_share(self) -> float:
        return self.combinations.get(frozenset(), 0) / self.n_documents if self.n_documents else 0.0


def harm_risk_overlap(documents: Sequence[Document]) -> HarmRiskOverlap:
    totals: dict[HarmRisk, int] = {r: 0 for r in HarmRisk}
    combinations: dict[frozenset, int] = {}
    combination_pastes: dict[frozenset, int] = {}
    for doc in documents:
        risks = harm_risks_for_document(doc)
        for risk in risks:
            totals[risk] += 1
        combinations[risks] = combinations.get(risks, 0) + 1
        if doc.platform is Platform.PASTES:
            combination_pastes[risks] = combination_pastes.get(risks, 0) + 1
    return HarmRiskOverlap(
        n_documents=len(documents),
        totals=totals,
        combinations=combinations,
        combination_pastes=combination_pastes,
    )


def no_risk_share_for_source(documents: Sequence[Document], source: Source) -> float:
    """Share of one source's doxes carrying no risk indicator (§7.2:
    'more than 50% of the Discord samples')."""
    subset = [d for d in documents if d.source is source]
    if not subset:
        return 0.0
    missing = sum(1 for d in subset if not harm_risks_for_document(d))
    return missing / len(subset)


def reputation_alone_share(documents: Sequence[Document], platform: Platform) -> float:
    """Share of a platform's doxes whose only risk is reputation (§7.2:
    23% of the chat data set)."""
    subset = [d for d in documents if d.platform is platform]
    if not subset:
        return 0.0
    alone = sum(
        1 for d in subset if harm_risks_for_document(d) == frozenset({HarmRisk.REPUTATION})
    )
    return alone / len(subset)
