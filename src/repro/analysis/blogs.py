"""Qualitative blog analysis (paper §8, Tables 8 and 9).

The classifiers did not perform well on long blog entries, so the paper
fell back to keyword relevance queries ("phone", "email", "dox", "dob:")
followed by manual annotation.  This module reproduces that methodology:
the keyword filter, the simulated-expert annotation of relevant posts, the
keyword-recall ground-truth check (§8.1's 10-of-33 miss on the Torch), and
the Daily Stormer overload-co-occurrence measurement.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Mapping, Sequence

from repro.annotation.annotator import EXPERT_PROFILE, SimulatedAnnotator
from repro.corpus.documents import Document
from repro.corpus.platforms.blogs import BLOG_DOMAINS
from repro.taxonomy.coding import ExpertCoder
from repro.taxonomy.attack_types import AttackType
from repro.types import Platform

import numpy as np

BLOG_KEYWORDS = ("phone", "email", "dox", "dob:")
_KEYWORD_RE = re.compile("|".join(re.escape(k) for k in BLOG_KEYWORDS), re.IGNORECASE)

#: Crude language gate: entries with too few common English function words
#: are set aside as foreign-language (the paper could not analyse those).
_ENGLISH_RE = re.compile(r"\b(?:the|and|of|to|this|that|for|with|who|their)\b", re.IGNORECASE)


def is_relevant(text: str) -> bool:
    return bool(_KEYWORD_RE.search(text))


def looks_english(text: str) -> bool:
    return len(_ENGLISH_RE.findall(text)) >= 2


@dataclasses.dataclass(frozen=True)
class BlogOutcome:
    """One row of Table 8 plus the §8.1/§8.3 detail measurements."""

    blog: str
    n_posts: int
    n_relevant: int
    n_relevant_foreign: int
    n_actual_doxes: int
    #: Ground-truth check: true doxes the keyword query missed (§8.1).
    n_keyword_missed: int
    #: Of the identified doxes, how many co-occur with an overload call
    #: (only meaningful for the Daily Stormer, §8.3).
    n_with_overload: int

    @property
    def actual_share(self) -> float:
        return self.n_actual_doxes / self.n_relevant if self.n_relevant else 0.0

    @property
    def overload_share(self) -> float:
        return self.n_with_overload / self.n_actual_doxes if self.n_actual_doxes else 0.0


def blog_analysis(
    documents: Sequence[Document], seed: int = 7
) -> Mapping[str, BlogOutcome]:
    """Run the §8 methodology over the blog substrate."""
    expert = SimulatedAnnotator(700, EXPERT_PROFILE, seed)
    coder = ExpertCoder()
    domain_to_blog = {domain: blog for blog, domain in BLOG_DOMAINS.items()}
    outcomes: dict[str, BlogOutcome] = {}
    blog_docs: dict[str, list[Document]] = {b: [] for b in BLOG_DOMAINS}
    for doc in documents:
        if doc.platform is not Platform.BLOGS:
            continue
        blog = domain_to_blog.get(doc.domain)
        if blog is not None:
            blog_docs[blog].append(doc)

    for blog, docs in blog_docs.items():
        relevant = [d for d in docs if is_relevant(d.text)]
        analysable = [d for d in relevant if looks_english(d.text)]
        foreign = len(relevant) - len(analysable)
        labels = expert.annotate_many(
            np.array([d.truth.is_dox for d in analysable], dtype=bool)
        )
        actual = [d for d, lab in zip(analysable, labels) if lab]
        # Ground-truth recall check (the paper did this on the Torch).
        missed = sum(
            1 for d in docs if d.truth.is_dox and not is_relevant(d.text)
        )
        with_overload = sum(
            1 for d in actual if AttackType.OVERLOADING in coder.code(d).parents
        )
        outcomes[blog] = BlogOutcome(
            blog=blog,
            n_posts=len(docs),
            n_relevant=len(analysable),
            n_relevant_foreign=len(relevant),
            n_actual_doxes=len(actual),
            n_keyword_missed=missed,
            n_with_overload=with_overload,
        )
    return outcomes
