"""Statistical tests used by the paper's analyses.

* one-way chi-square tests for subcategory differences across data sets
  (§6.2), with multiple-testing correction;
* two-sample t-tests on log thread sizes (§6.3) — logs for symmetric
  distributions, as the paper notes;
* Benjamini-Hochberg correction with the paper's default error rate 0.1.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np
from scipy import stats as sps


@dataclasses.dataclass(frozen=True)
class TestResult:
    __test__ = False  # not a pytest test class despite the name

    name: str
    statistic: float
    p_value: float
    significant: bool = False

    def with_significance(self, significant: bool) -> "TestResult":
        return dataclasses.replace(self, significant=significant)


def chi_square_uniform(counts: Sequence[int], name: str = "") -> TestResult:
    """One-way chi-square against the uniform expectation."""
    counts = np.asarray(counts, dtype=np.float64)
    if counts.size < 2:
        raise ValueError("chi-square needs at least two categories")
    if counts.sum() <= 0:
        raise ValueError("chi-square needs non-zero total count")
    statistic, p_value = sps.chisquare(counts)
    return TestResult(name=name, statistic=float(statistic), p_value=float(p_value))


def chi_square_two_way(table: np.ndarray, name: str = "") -> TestResult:
    """Chi-square test of independence for a contingency table."""
    table = np.asarray(table, dtype=np.float64)
    statistic, p_value, _dof, _exp = sps.chi2_contingency(table)
    return TestResult(name=name, statistic=float(statistic), p_value=float(p_value))


def two_sample_log_t(sample: Sequence[float], baseline: Sequence[float], name: str = "") -> TestResult:
    """Welch t-test on log-transformed positive values (paper §6.3)."""
    a = np.log(np.asarray(sample, dtype=np.float64) + 1.0)
    b = np.log(np.asarray(baseline, dtype=np.float64) + 1.0)
    if a.size < 2 or b.size < 2:
        raise ValueError("both samples need at least two observations")
    statistic, p_value = sps.ttest_ind(a, b, equal_var=False)
    return TestResult(name=name, statistic=float(statistic), p_value=float(p_value))


def benjamini_hochberg(results: Sequence[TestResult], error_rate: float = 0.1) -> list[TestResult]:
    """BH step-up procedure; returns results flagged for significance.

    The paper corrects its thread-size comparisons with BH at the default
    error rate of 0.1.
    """
    if not 0 < error_rate < 1:
        raise ValueError("error_rate must be in (0, 1)")
    if not results:
        return []
    order = np.argsort([r.p_value for r in results])
    m = len(results)
    threshold_rank = 0
    for rank, idx in enumerate(order, start=1):
        if results[idx].p_value <= rank / m * error_rate:
            threshold_rank = rank
    significant_ids = set(order[:threshold_rank].tolist())
    return [
        result.with_significance(i in significant_ids)
        for i, result in enumerate(results)
    ]
