"""Board thread analyses (paper §6.3, §7.4, Figures 5 and 6).

All thread analyses run on the board substrate only — the only platform
with post ordering (the paper had the same restriction).  "Responses" to a
post are all messages in its thread after it.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

import numpy as np

from repro.analysis.stats import TestResult, benjamini_hochberg, two_sample_log_t
from repro.corpus.documents import Corpus, Document
from repro.taxonomy.attack_types import AttackType
from repro.taxonomy.coding import CodedDocument
from repro.util.rng import child_rng


@dataclasses.dataclass(frozen=True)
class ThreadPositionStats:
    """Position-in-thread statistics for a set of board posts (§6.3)."""

    n_posts: int
    first_post_count: int
    last_post_count: int
    position_median: float
    position_mean: float
    position_std: float

    @property
    def first_post_share(self) -> float:
        return self.first_post_count / self.n_posts if self.n_posts else 0.0

    @property
    def last_post_share(self) -> float:
        return self.last_post_count / self.n_posts if self.n_posts else 0.0


def thread_position_stats(corpus: Corpus, posts: Sequence[Document]) -> ThreadPositionStats:
    """Where in their threads the given board posts sit."""
    positions = []
    first = last = 0
    for doc in posts:
        if doc.thread_id is None or doc.position is None:
            continue
        thread = corpus.thread(doc.thread_id)
        positions.append(doc.position)
        if doc.position == 0:
            first += 1
        if doc.position == thread.size - 1:
            last += 1
    if not positions:
        raise ValueError("no threaded posts to analyse")
    arr = np.asarray(positions, dtype=np.float64)
    return ThreadPositionStats(
        n_posts=arr.size,
        first_post_count=first,
        last_post_count=last,
        position_median=float(np.median(arr)),
        position_mean=float(arr.mean()),
        position_std=float(arr.std()),
    )


def response_sizes(corpus: Corpus, posts: Sequence[Document]) -> np.ndarray:
    """Number of messages after each post in its thread (§6.3)."""
    sizes = []
    for doc in posts:
        if doc.thread_id is None or doc.position is None:
            continue
        thread = corpus.thread(doc.thread_id)
        sizes.append(thread.responses_after(doc.position))
    return np.asarray(sizes, dtype=np.float64)


def baseline_board_posts(
    corpus: Corpus, n: int, seed: int = 0
) -> list[Document]:
    """A random baseline of board posts that are neither CTH nor dox.

    The paper drew 5,000 random board posts and manually verified they
    contained no calls to harassment; the oracle check plays that role.
    """
    rng = child_rng(seed, "thread-baseline")
    from repro.types import Platform  # local import to avoid cycles

    board_docs = corpus.by_platform(Platform.BOARDS)
    candidates = [
        d for d in board_docs if not d.truth.is_cth and not d.truth.is_dox
    ]
    if not candidates:
        raise ValueError("no baseline candidates available")
    take = min(n, len(candidates))
    idx = rng.choice(len(candidates), size=take, replace=False)
    return [candidates[i] for i in idx]


def response_size_tests(
    corpus: Corpus,
    coded_by_type: Mapping[AttackType, Sequence[CodedDocument]],
    baseline: Sequence[Document],
    error_rate: float = 0.1,
    min_examples: int = 3,
) -> list[TestResult]:
    """Per-attack-type response-volume tests against the baseline (§6.3).

    As in the paper: only single-category calls enter (independence of
    samples), under-populated categories are excluded, the test is on log
    sizes, and BH correction is applied at error rate 0.1.
    """
    baseline_sizes = response_sizes(corpus, baseline)
    results = []
    for attack_type, coded in coded_by_type.items():
        single = [c.document for c in coded if len(c.parents) == 1]
        sizes = response_sizes(corpus, single)
        if sizes.size < min_examples:
            continue
        results.append(
            two_sample_log_t(sizes, baseline_sizes, name=attack_type.value)
        )
    return benjamini_hochberg(results, error_rate=error_rate)


def empirical_cdf(values: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """(sorted values, cumulative probability) for CDF plots (Figure 5)."""
    arr = np.sort(np.asarray(values, dtype=np.float64))
    if arr.size == 0:
        raise ValueError("empty sample")
    return arr, np.arange(1, arr.size + 1) / arr.size
