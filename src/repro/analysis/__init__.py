"""Empirical analyses of the annotated true-positive sets (paper §6-§8)."""

from repro.analysis.stats import (
    benjamini_hochberg,
    chi_square_uniform,
    two_sample_log_t,
)
from repro.analysis.attack_stats import attack_type_table, subtype_table, AttackTypeTable
from repro.analysis.gender_stats import gender_subtype_table
from repro.analysis.threads import (
    thread_position_stats,
    response_sizes,
    response_size_tests,
    empirical_cdf,
)
from repro.analysis.cooccurrence import (
    attack_cooccurrence,
    thread_overlap,
    CooccurrenceStats,
)
from repro.analysis.pii_stats import pii_prevalence_table, pii_cooccurrence
from repro.analysis.harm_risk_stats import harm_risk_overlap, detect_reputation_info
from repro.analysis.repeated import repeated_dox_analysis
from repro.analysis.blogs import blog_analysis, BLOG_KEYWORDS

__all__ = [
    "benjamini_hochberg",
    "chi_square_uniform",
    "two_sample_log_t",
    "attack_type_table",
    "subtype_table",
    "AttackTypeTable",
    "gender_subtype_table",
    "thread_position_stats",
    "response_sizes",
    "response_size_tests",
    "empirical_cdf",
    "attack_cooccurrence",
    "thread_overlap",
    "CooccurrenceStats",
    "pii_prevalence_table",
    "pii_cooccurrence",
    "harm_risk_overlap",
    "detect_reputation_info",
    "repeated_dox_analysis",
    "blog_analysis",
    "BLOG_KEYWORDS",
]
