"""Co-occurrence analyses (paper §6.2 and §6.3).

* attack-type co-occurrence within single calls to harassment;
* thread-level overlap between above-threshold calls to harassment and
  doxes on the boards.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

from repro.corpus.documents import Corpus, Document
from repro.taxonomy.attack_types import AttackType
from repro.taxonomy.coding import CodedDocument


@dataclasses.dataclass(frozen=True)
class CooccurrenceStats:
    """Attack-type multiplicity and pairwise conditional rates (§6.2)."""

    n_documents: int
    type_count_histogram: Mapping[int, int]  # n parent types -> documents
    pair_counts: Mapping[tuple[AttackType, AttackType], int]
    parent_totals: Mapping[AttackType, int]

    @property
    def multi_type_count(self) -> int:
        return sum(c for n, c in self.type_count_histogram.items() if n > 1)

    @property
    def multi_type_share(self) -> float:
        return self.multi_type_count / self.n_documents if self.n_documents else 0.0

    def conditional(self, given: AttackType, other: AttackType) -> float:
        """P(other present | given present)."""
        total = self.parent_totals.get(given, 0)
        if total == 0:
            return 0.0
        key = (given, other) if given.value < other.value else (other, given)
        return self.pair_counts.get(key, 0) / total


def attack_cooccurrence(coded: Sequence[CodedDocument]) -> CooccurrenceStats:
    histogram: dict[int, int] = {}
    pair_counts: dict[tuple[AttackType, AttackType], int] = {}
    parent_totals: dict[AttackType, int] = {}
    for doc in coded:
        parents = sorted(doc.parents, key=lambda a: a.value)
        histogram[len(parents)] = histogram.get(len(parents), 0) + 1
        for parent in parents:
            parent_totals[parent] = parent_totals.get(parent, 0) + 1
        for i, a in enumerate(parents):
            for b in parents[i + 1 :]:
                pair_counts[(a, b)] = pair_counts.get((a, b), 0) + 1
    return CooccurrenceStats(
        n_documents=len(coded),
        type_count_histogram=histogram,
        pair_counts=pair_counts,
        parent_totals=parent_totals,
    )


@dataclasses.dataclass(frozen=True)
class ThreadOverlap:
    """CTH x dox thread overlap on the boards (§6.3)."""

    n_cth: int
    n_dox: int
    cth_in_dox_thread: int
    dox_threads_total: int
    dox_threads_with_cth: int
    random_thread_cth_share: float
    random_thread_dox_share: float

    @property
    def cth_with_dox_share(self) -> float:
        return self.cth_in_dox_thread / self.n_cth if self.n_cth else 0.0

    @property
    def dox_thread_with_cth_share(self) -> float:
        if not self.dox_threads_total:
            return 0.0
        return self.dox_threads_with_cth / self.dox_threads_total


def thread_overlap(
    corpus: Corpus,
    cth_docs: Sequence[Document],
    dox_docs: Sequence[Document],
) -> ThreadOverlap:
    """Measure thread co-occurrence of above-threshold CTH and dox posts.

    As in the paper, this runs on the *above-threshold* sets (the
    annotated sets are too small to capture overlap), so classifier false
    positives introduce some noise by design.
    """
    cth_threads = {d.thread_id for d in cth_docs if d.thread_id is not None}
    dox_threads = {d.thread_id for d in dox_docs if d.thread_id is not None}
    cth_in_dox = sum(
        1 for d in cth_docs if d.thread_id is not None and d.thread_id in dox_threads
    )
    dox_with_cth = len(dox_threads & cth_threads)
    all_threads = corpus.threads
    n_threads = len(all_threads) or 1
    return ThreadOverlap(
        n_cth=sum(1 for d in cth_docs if d.thread_id is not None),
        n_dox=sum(1 for d in dox_docs if d.thread_id is not None),
        cth_in_dox_thread=cth_in_dox,
        dox_threads_total=len(dox_threads),
        dox_threads_with_cth=dox_with_cth,
        random_thread_cth_share=len(cth_threads) / n_threads,
        random_thread_dox_share=len(dox_threads) / n_threads,
    )


def detected_by_both(documents: Sequence[Document]) -> int:
    """Documents positive for both tasks (the paper's 95 posts, §1)."""
    return sum(1 for d in documents if d.truth.is_dox and d.truth.is_cth)
