"""PII prevalence and co-occurrence in annotated doxes (paper §7.1, Table 6)."""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

from repro.corpus.documents import Document
from repro.extraction.pii import PII_EXTRACTORS, pii_categories_present
from repro.types import Platform


@dataclasses.dataclass(frozen=True)
class PiiTable:
    """Per-platform PII presence counts over annotated doxes (Table 6)."""

    sizes: Mapping[Platform, int]
    counts: Mapping[str, Mapping[Platform, int]]

    def share(self, category: str, platform: Platform) -> float:
        size = self.sizes.get(platform, 0)
        if size == 0:
            return 0.0
        return self.counts[category].get(platform, 0) / size


def pii_prevalence_table(
    doxes_by_platform: Mapping[Platform, Sequence[Document]]
) -> PiiTable:
    """Extract PII from each annotated dox and tabulate presence."""
    sizes = {p: len(docs) for p, docs in doxes_by_platform.items()}
    counts: dict[str, dict[Platform, int]] = {c: {} for c in PII_EXTRACTORS}
    for platform, docs in doxes_by_platform.items():
        for doc in docs:
            for category in pii_categories_present(doc.text):
                counts[category][platform] = counts[category].get(platform, 0) + 1
    return PiiTable(sizes=sizes, counts=counts)


@dataclasses.dataclass(frozen=True)
class PiiCooccurrence:
    """Pairwise conditional presence rates across all annotated doxes."""

    totals: Mapping[str, int]
    pair_counts: Mapping[tuple[str, str], int]
    n_documents: int

    def conditional(self, given: str, other: str) -> float:
        """P(other present | given present)."""
        total = self.totals.get(given, 0)
        if total == 0:
            return 0.0
        key = (given, other) if given < other else (other, given)
        return self.pair_counts.get(key, 0) / total

    def min_conditional(self, category: str) -> float:
        """min over other categories of P(category | other).

        This is the shape of the paper's §7.1 claim: "street addresses,
        phone numbers and email addresses co-occurred with all other types
        of PII more than 35 % of the time" — i.e. whatever other PII a dox
        carries, the core category is present at least that often.
        """
        others = [c for c in self.totals if c != category and self.totals[c] > 0]
        if not others or self.totals.get(category, 0) == 0:
            return 0.0
        return min(self.conditional(other, category) for other in others)


def pii_cooccurrence(documents: Sequence[Document]) -> PiiCooccurrence:
    totals: dict[str, int] = {}
    pair_counts: dict[tuple[str, str], int] = {}
    for doc in documents:
        present = sorted(pii_categories_present(doc.text))
        for category in present:
            totals[category] = totals.get(category, 0) + 1
        for i, a in enumerate(present):
            for b in present[i + 1 :]:
                pair_counts[(a, b)] = pair_counts.get((a, b), 0) + 1
    return PiiCooccurrence(totals=totals, pair_counts=pair_counts, n_documents=len(documents))
