"""Static analysis of the reproduction's determinism contract.

The staged engine promises byte-identical study results across cache
on/off and ``jobs=1`` vs ``jobs=N`` — a promise that rests on code
conventions (named RNG streams, artifact-store-only I/O, no wall clock
in keyed paths) that this package makes checkable on every diff:

- :mod:`engine` parses each file once and runs every registered rule
  over the shared AST, honouring ``# repro: noqa[RULE]`` suppressions;
  project rules additionally share one lazily-built call graph per run;
- :mod:`graph` builds the project-wide symbol table and call graph the
  cross-module rules consume;
- :mod:`rules` holds the rule pack (``DET001``–``DET003`` determinism,
  ``PUR001``–``PUR002`` stage purity, ``CONC001``–``CONC003`` shard
  isolation, ``MRG001``–``MRG003`` telemetry merge contracts);
- :mod:`baseline` grandfathers pre-existing findings in a committed
  JSON file so the CI gate only fails on *new* violations;
- :mod:`report` renders findings ruff-style, as JSON, or as SARIF.

Run it via ``repro lint [paths]``, ``make lint-repro`` (all rules), or
``make lint-contracts`` (the graph-backed packs only).
"""

from repro.analysis.lint.baseline import Baseline, BaselineEntry
from repro.analysis.lint.engine import (
    FileContext,
    Finding,
    LintResult,
    LintStats,
    LintUsageError,
    Project,
    ProjectRule,
    Rule,
    all_rules,
    lint_paths,
    register,
    run_lint,
)
from repro.analysis.lint.report import render_json, render_sarif, render_text

__all__ = [
    "Baseline",
    "BaselineEntry",
    "FileContext",
    "Finding",
    "LintResult",
    "LintStats",
    "LintUsageError",
    "Project",
    "ProjectRule",
    "Rule",
    "all_rules",
    "lint_paths",
    "register",
    "render_json",
    "render_sarif",
    "render_text",
    "run_lint",
]
