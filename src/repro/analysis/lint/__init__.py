"""Static analysis of the reproduction's determinism contract.

The staged engine promises byte-identical study results across cache
on/off and ``jobs=1`` vs ``jobs=N`` — a promise that rests on code
conventions (named RNG streams, artifact-store-only I/O, no wall clock
in keyed paths) that this package makes checkable on every diff:

- :mod:`engine` parses each file once and runs every registered rule
  over the shared AST, honouring ``# repro: noqa[RULE]`` suppressions;
- :mod:`rules` holds the rule pack (``DET001``–``DET003`` determinism,
  ``PUR001``–``PUR002`` stage purity);
- :mod:`baseline` grandfathers pre-existing findings in a committed
  JSON file so the CI gate only fails on *new* violations;
- :mod:`report` renders findings ruff-style or as JSON for CI.

Run it via ``repro lint [paths]`` or ``make lint-repro``.
"""

from repro.analysis.lint.baseline import Baseline, BaselineEntry
from repro.analysis.lint.engine import (
    FileContext,
    Finding,
    LintUsageError,
    Rule,
    all_rules,
    lint_paths,
    register,
)
from repro.analysis.lint.report import render_json, render_text

__all__ = [
    "Baseline",
    "BaselineEntry",
    "FileContext",
    "Finding",
    "LintUsageError",
    "Rule",
    "all_rules",
    "lint_paths",
    "register",
    "render_json",
    "render_text",
]
