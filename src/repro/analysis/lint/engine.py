"""Rule registry and per-file lint driver.

Every rule sees one shared :class:`FileContext` per file — a single
``ast.parse`` plus precomputed helpers (import alias map, module-level
bindings, ``# repro: noqa`` lines) — so adding a rule never adds a
parse.  Rules register themselves with :func:`register`; the rule pack
in :mod:`repro.analysis.lint.rules` is imported lazily the first time
rules are requested, which keeps ``import repro`` free of lint costs.

Suppression syntax, checked per finding line::

    value = np.random.default_rng(seed)  # repro: noqa[DET001]
    anything_goes_here()                 # repro: noqa

The bracketed form silences only the listed rule ids; the bare form
silences every rule on that line.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
import re
import time
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.analysis.lint.graph import ProjectGraph

#: Rule id used for files the parser rejects (not a registered rule —
#: it cannot be selected, ignored, or suppressed away silently).
PARSE_ERROR = "E999"

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9_,\s]+)\])?")

#: Sentinel meaning "every rule is suppressed on this line".
_ALL_RULES = frozenset({"*"})


class LintUsageError(ValueError):
    """Bad invocation (unknown rule id, missing path) — exit code 2."""


@dataclasses.dataclass(frozen=True)
class Finding:
    """One violation: location, rule, message, and a fix hint."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    hint: str = ""
    snippet: str = ""

    @property
    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    @property
    def baseline_key(self) -> tuple[str, str, str]:
        """Line-number-free identity used for baseline matching.

        Keyed on the stripped source line rather than the line number so
        unrelated edits above a grandfathered finding do not un-baseline
        it.
        """
        return (self.path, self.rule, self.snippet)


class Rule:
    """Base class for lint rules.

    Subclasses set ``id`` / ``summary`` / ``hint`` and implement
    :meth:`check`, yielding findings (usually via ``ctx.finding``).
    """

    id: str = ""
    summary: str = ""
    hint: str = ""

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule that checks the whole project, not one file at a time.

    Subclasses implement :meth:`check_project` against a :class:`Project`
    (every parsed file plus the lazily-built, shared call graph).  The
    per-file :meth:`check` hook is a no-op so project rules slot into the
    same registry, selection, noqa, and baseline machinery as everything
    else; findings are still attributed to concrete file/line positions
    and suppressed by that file's ``# repro: noqa`` comments.
    """

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: "Project") -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one instance of ``cls`` to the registry."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"rule id {rule.id!r} is already registered")
    _REGISTRY[rule.id] = rule
    return cls


def all_rules() -> Mapping[str, Rule]:
    """Every registered rule, keyed by id (loads the rule pack)."""
    from repro.analysis.lint import rules  # noqa: F401 - import populates registry

    return dict(_REGISTRY)


def _expand_rule_tokens(
    tokens: Iterable[str], known: Iterable[str]
) -> tuple[set[str], set[str]]:
    """Expand exact ids and family prefixes; return (ids, unknown tokens).

    ``--select CONC,MRG`` selects every rule in those families;
    ``--select DET003`` still selects exactly one rule.  A token that
    matches nothing (neither exactly nor as a prefix) is reported back.
    """
    expanded: set[str] = set()
    unknown: set[str] = set()
    known = list(known)
    for token in tokens:
        matches = {rid for rid in known if rid == token or rid.startswith(token)}
        if matches:
            expanded |= matches
        else:
            unknown.add(token)
    return expanded, unknown


def select_rules(
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Rule]:
    """Resolve ``--select`` / ``--ignore`` to an ordered rule list.

    Both accept exact rule ids (``DET001``) and family prefixes
    (``CONC``, ``MRG``) that expand to every registered rule they match.
    """
    rules = all_rules()
    chosen_ids, unknown = (
        _expand_rule_tokens(select, rules) if select else (set(rules), set())
    )
    ignored_ids, unknown_ignored = (
        _expand_rule_tokens(ignore, rules) if ignore else (set(), set())
    )
    unknown |= unknown_ignored
    if unknown:
        known = ", ".join(sorted(rules))
        raise LintUsageError(
            f"unknown rule id(s): {', '.join(sorted(unknown))} (known: {known})"
        )
    return [
        rules[rule_id]
        for rule_id in sorted(chosen_ids - ignored_ids)
    ]


class FileContext:
    """One parsed file, shared by every rule that checks it."""

    def __init__(self, display_path: str, source: str, tree: ast.Module) -> None:
        self.display_path = display_path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.imports = _import_map(tree)
        self.module_bindings = _module_bindings(tree)
        self.noqa = _noqa_map(self.lines)
        #: Cross-rule scratch space (e.g. the stage-function set computed
        #: once by the purity rules).
        self.shared: dict[str, object] = {}

    # -- name resolution -----------------------------------------------------

    def dotted_name(self, node: ast.expr) -> str | None:
        """Flatten a ``Name``/``Attribute`` chain to ``a.b.c`` (no imports)."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        return ".".join(reversed(parts))

    def resolve_imported(self, node: ast.expr) -> str | None:
        """Fully-qualified name of a call target, or None.

        Returns a dotted name only when the chain's root is an import
        alias in this file (``import numpy as np`` makes ``np.random.seed``
        resolve to ``numpy.random.seed``).  Locally-bound names resolve
        to None, so a variable that merely shadows a module name is
        never misattributed to it.
        """
        dotted = self.dotted_name(node)
        if dotted is None:
            return None
        root, _, rest = dotted.partition(".")
        target = self.imports.get(root)
        if target is None:
            return None
        return f"{target}.{rest}" if rest else target

    def is_builtin(self, name: str) -> bool:
        """True when ``name`` still means the Python builtin here."""
        return name not in self.imports and name not in self.module_bindings

    # -- findings ------------------------------------------------------------

    def snippet(self, line: int) -> str:
        if 0 < line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(
        self, rule: Rule, node: ast.AST, message: str, hint: str | None = None
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        return Finding(
            path=self.display_path,
            line=line,
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule.id,
            message=message,
            hint=rule.hint if hint is None else hint,
            snippet=self.snippet(line),
        )

    def is_suppressed(self, finding: Finding) -> bool:
        suppressed = self.noqa.get(finding.line)
        if suppressed is None:
            return False
        return suppressed is _ALL_RULES or finding.rule in suppressed


def _import_map(tree: ast.Module) -> dict[str, str]:
    """Local name -> fully-qualified import target, for the whole file."""
    mapping: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.partition(".")[0]
                target = alias.name if alias.asname else local
                mapping[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                mapping[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return mapping


def _module_bindings(tree: ast.Module) -> set[str]:
    """Names bound at module level (defs, classes, assignments, imports)."""
    bound: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for name in ast.walk(target):
                    if isinstance(name, ast.Name):
                        bound.add(name.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            bound.add(node.target.id)
        elif isinstance(node, ast.Import):
            bound.update(a.asname or a.name.partition(".")[0] for a in node.names)
        elif isinstance(node, ast.ImportFrom):
            bound.update(a.asname or a.name for a in node.names if a.name != "*")
    return bound


def _noqa_map(lines: Sequence[str]) -> dict[int, frozenset[str]]:
    """Line number -> suppressed rule ids (``_ALL_RULES`` for bare noqa)."""
    suppressions: dict[int, frozenset[str]] = {}
    for number, text in enumerate(lines, start=1):
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        listed = match.group("rules")
        if listed is None:
            suppressions[number] = _ALL_RULES
        else:
            suppressions[number] = frozenset(
                rule.strip() for rule in listed.split(",") if rule.strip()
            )
    return suppressions


# -- project ----------------------------------------------------------------


class Project:
    """Every parsed file in a run, plus one lazily-built call graph.

    The graph is constructed at most once per :class:`Project` no matter
    how many :class:`ProjectRule`\\ s ask for it; ``graph_builds`` and
    ``graph_seconds`` record the (single) construction for ``--stats``.
    """

    def __init__(self, contexts: Iterable[FileContext]) -> None:
        self.contexts = sorted(contexts, key=lambda c: c.display_path)
        self.by_path = {ctx.display_path: ctx for ctx in self.contexts}
        self._graph: "ProjectGraph | None" = None
        self.graph_builds = 0
        self.graph_seconds = 0.0

    @property
    def graph(self) -> "ProjectGraph":
        if self._graph is None:
            # Imported lazily: the graph package imports FileContext from
            # this module, and building it costs nothing until a
            # graph-backed rule is actually selected.
            from repro.analysis.lint.graph import build_graph

            started = time.perf_counter()
            self._graph = build_graph(self.contexts)
            self.graph_seconds += time.perf_counter() - started
            self.graph_builds += 1
        return self._graph


@dataclasses.dataclass
class LintStats:
    """Timing/size counters for one lint run (``--stats``)."""

    n_files: int = 0
    parse_seconds: float = 0.0
    rule_seconds: float = 0.0
    graph_builds: int = 0
    graph_seconds: float = 0.0
    graph_functions: int = 0
    graph_edges: int = 0

    def render(self) -> str:
        line = (
            f"lint: {self.n_files} files, parse {self.parse_seconds:.3f}s, "
            f"rules {self.rule_seconds:.3f}s"
        )
        if self.graph_builds:
            line += (
                f"; call graph: built {self.graph_builds}x, "
                f"{self.graph_functions} functions, {self.graph_edges} edges, "
                f"{self.graph_seconds:.3f}s"
            )
        else:
            line += "; call graph: not built"
        return line


@dataclasses.dataclass
class LintResult:
    """Findings plus run statistics and the project they came from."""

    findings: list[Finding]
    stats: LintStats
    project: Project


# -- driving ----------------------------------------------------------------


def _parse_error(display_path: str, exc: SyntaxError) -> Finding:
    return Finding(
        path=display_path,
        line=exc.lineno or 1,
        col=(exc.offset or 1),
        rule=PARSE_ERROR,
        message=f"cannot parse file: {exc.msg}",
        hint="fix the syntax error; unparseable files are never lint-clean",
    )


def _check_all(
    contexts: Sequence[FileContext],
    rules: Sequence[Rule],
    stats: LintStats | None = None,
) -> tuple[list[Finding], Project]:
    """Run per-file rules on each file, then project rules once."""
    project = Project(contexts)
    file_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    started = time.perf_counter()
    findings = [
        finding
        for ctx in project.contexts
        for rule in file_rules
        for finding in rule.check(ctx)
        if not ctx.is_suppressed(finding)
    ]
    for rule in project_rules:
        for finding in rule.check_project(project):
            ctx = project.by_path.get(finding.path)
            if ctx is not None and ctx.is_suppressed(finding):
                continue
            findings.append(finding)
    if stats is not None:
        stats.rule_seconds += time.perf_counter() - started - project.graph_seconds
        stats.graph_builds = project.graph_builds
        stats.graph_seconds = project.graph_seconds
        if project._graph is not None:
            stats.graph_functions = project._graph.n_functions
            stats.graph_edges = project._graph.n_edges
    return findings, project


def lint_source(
    source: str, display_path: str, rules: Sequence[Rule]
) -> list[Finding]:
    """Lint one already-read file; parse errors become E999 findings.

    Project rules run too, over a single-file project — which is exactly
    what the fixture suite wants.
    """
    try:
        tree = ast.parse(source, filename=display_path)
    except SyntaxError as exc:
        return [_parse_error(display_path, exc)]
    ctx = FileContext(display_path, source, tree)
    findings, _ = _check_all([ctx], rules)
    return sorted(findings, key=lambda f: f.sort_key)


def iter_python_files(paths: Sequence[str | pathlib.Path]) -> list[pathlib.Path]:
    """Expand files/directories to a sorted, de-duplicated .py file list."""
    found: dict[pathlib.Path, None] = {}
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            for child in sorted(path.rglob("*.py")):
                if any(part.startswith(".") or part == "__pycache__"
                       for part in child.parts):
                    continue
                found[child] = None
        elif path.is_file():
            found[path] = None
        else:
            raise LintUsageError(f"no such file or directory: {path}")
    return sorted(found)


def _display_path(path: pathlib.Path) -> str:
    """Repo-relative posix path when possible (stable across machines)."""
    resolved = path.resolve()
    try:
        return resolved.relative_to(pathlib.Path.cwd()).as_posix()
    except ValueError:
        return resolved.as_posix()


def run_lint(
    paths: Sequence[str | pathlib.Path],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> LintResult:
    """Lint every .py file under ``paths``; returns findings + stats.

    All files are parsed up front into one :class:`Project` so that
    project rules see the whole codebase at once and share a single call
    graph; per-file rules behave exactly as before.
    """
    rules = select_rules(select, ignore)
    stats = LintStats()
    contexts: list[FileContext] = []
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        source = path.read_text(encoding="utf-8")
        display = _display_path(path)
        started = time.perf_counter()
        try:
            tree = ast.parse(source, filename=display)
        except SyntaxError as exc:
            findings.append(_parse_error(display, exc))
            continue
        finally:
            stats.parse_seconds += time.perf_counter() - started
        contexts.append(FileContext(display, source, tree))
    stats.n_files = len(contexts)
    checked, project = _check_all(contexts, rules, stats)
    findings.extend(checked)
    return LintResult(
        findings=sorted(findings, key=lambda f: f.sort_key),
        stats=stats,
        project=project,
    )


def lint_paths(
    paths: Sequence[str | pathlib.Path],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint every .py file under ``paths`` with the chosen rules."""
    return run_lint(paths, select, ignore).findings
