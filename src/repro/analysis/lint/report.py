"""Finding renderers: ruff-style text, JSON for CI, SARIF for annotation."""

from __future__ import annotations

import dataclasses
import json
from typing import Sequence

from repro.analysis.lint.baseline import BaselineEntry
from repro.analysis.lint.engine import Finding


def render_text(
    findings: Sequence[Finding],
    stale: Sequence[BaselineEntry] = (),
    n_baselined: int = 0,
) -> str:
    """``path:line:col: RULE message (hint: ...)`` per finding."""
    lines: list[str] = []
    for f in findings:
        hint = f" (hint: {f.hint})" if f.hint else ""
        lines.append(f"{f.path}:{f.line}:{f.col}: {f.rule} {f.message}{hint}")
    for entry in stale:
        lines.append(
            f"stale baseline entry: {entry.path} {entry.rule} "
            f"{entry.snippet!r} — fixed in source; run --update-baseline "
            "to expire it"
        )
    summary = f"{len(findings)} finding{'s' if len(findings) != 1 else ''}"
    if n_baselined:
        summary += f" ({n_baselined} baselined)"
    if stale:
        summary += f", {len(stale)} stale baseline entr{'ies' if len(stale) != 1 else 'y'}"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    stale: Sequence[BaselineEntry] = (),
    n_baselined: int = 0,
) -> str:
    """Machine-readable report for the CI gate (stable key order)."""
    payload = {
        "findings": [dataclasses.asdict(f) for f in findings],
        "stale_baseline": [dataclasses.asdict(e) for e in stale],
        "n_findings": len(findings),
        "n_baselined": n_baselined,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(
    findings: Sequence[Finding],
    stale: Sequence[BaselineEntry] = (),
    n_baselined: int = 0,
) -> str:
    """SARIF 2.1.0 log so CI can annotate PR diffs with findings.

    One run, one result per finding; rule metadata is collected from the
    findings themselves so the ``rules`` array only lists what fired.
    ``stale``/``n_baselined`` are accepted for renderer signature parity
    but have no SARIF representation (stale entries are not source
    locations).
    """
    del stale, n_baselined
    rule_help: dict[str, str] = {}
    for f in findings:
        rule_help.setdefault(f.rule, f.hint)
    rules = [
        {
            "id": rule_id,
            "defaultConfiguration": {"level": "error"},
            **(
                {"help": {"text": rule_help[rule_id]}}
                if rule_help[rule_id]
                else {}
            ),
        }
        for rule_id in sorted(rule_help)
    ]
    results = [
        {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": f.line,
                            "startColumn": f.col,
                            **(
                                {"snippet": {"text": f.snippet}}
                                if f.snippet
                                else {}
                            ),
                        },
                    }
                }
            ],
        }
        for f in findings
    ]
    log = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)
