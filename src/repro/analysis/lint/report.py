"""Finding renderers: ruff-style text for humans, JSON for CI."""

from __future__ import annotations

import dataclasses
import json
from typing import Sequence

from repro.analysis.lint.baseline import BaselineEntry
from repro.analysis.lint.engine import Finding


def render_text(
    findings: Sequence[Finding],
    stale: Sequence[BaselineEntry] = (),
    n_baselined: int = 0,
) -> str:
    """``path:line:col: RULE message (hint: ...)`` per finding."""
    lines: list[str] = []
    for f in findings:
        hint = f" (hint: {f.hint})" if f.hint else ""
        lines.append(f"{f.path}:{f.line}:{f.col}: {f.rule} {f.message}{hint}")
    for entry in stale:
        lines.append(
            f"stale baseline entry: {entry.path} {entry.rule} "
            f"{entry.snippet!r} — fixed in source; run --update-baseline "
            "to expire it"
        )
    summary = f"{len(findings)} finding{'s' if len(findings) != 1 else ''}"
    if n_baselined:
        summary += f" ({n_baselined} baselined)"
    if stale:
        summary += f", {len(stale)} stale baseline entr{'ies' if len(stale) != 1 else 'y'}"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    stale: Sequence[BaselineEntry] = (),
    n_baselined: int = 0,
) -> str:
    """Machine-readable report for the CI gate (stable key order)."""
    payload = {
        "findings": [dataclasses.asdict(f) for f in findings],
        "stale_baseline": [dataclasses.asdict(e) for e in stale],
        "n_findings": len(findings),
        "n_baselined": n_baselined,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
