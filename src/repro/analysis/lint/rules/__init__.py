"""The rule pack.

Importing this package registers every rule with the engine's registry;
:func:`repro.analysis.lint.engine.all_rules` does so lazily.
"""

from repro.analysis.lint.rules import determinism, purity

__all__ = ["determinism", "purity"]
