"""The rule pack.

Importing this package registers every rule with the engine's registry;
:func:`repro.analysis.lint.engine.all_rules` does so lazily.  The
``DET``/``PUR`` packs are per-file; ``CONC``/``MRG`` are project rules
backed by the shared call graph in :mod:`repro.analysis.lint.graph`.
"""

from repro.analysis.lint.rules import concurrency, contracts, determinism, purity

__all__ = ["concurrency", "contracts", "determinism", "purity"]
