"""Shard-isolation rules (CONC) backed by the project call graph.

The serving runtime's headline invariant — merged shard output
byte-identical to a single monitor — only holds if nothing reachable
from a shard worker's call path touches state shared across shards.
These rules make that argument structural:

- **CONC001** — module-level or class-level mutable containers
  (dict/list/set/Counter/...) referenced from a shard-worker call path.
  Class-body mutables are shared by every instance, hence every shard;
  module globals are shared by everything.  Route the data through the
  shard's queue or keep it per-instance.
- **CONC002** — a shared module-level ``Tracer``/``MetricsRegistry``/
  ``RunObserver`` written from more than one worker entry point.  The
  repo's discipline is single-writer-per-shard with an absorb in
  shard-id order on the main thread; concurrent writers would make
  trace bytes depend on the thread schedule.
- **CONC003** — per-target monitor state (underscore-prefixed mutable
  instance attributes) accessed from outside the owning class's own
  methods.  That state is shard-local by routing; reaching into it from
  another class bypasses the ownership the routing guarantees.

Reachability starts from :data:`WORKER_ENTRY_SUFFIXES` — the functions
that run on shard workers (or, for the ``Tracer`` methods, that workers
call concurrently).  Suffix matching keys on trailing dotted components,
so fixture files defining their own ``ServingRuntime._run_shard`` hit
the same paths as the real one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.analysis.lint.engine import Finding, ProjectRule, register

if TYPE_CHECKING:
    from repro.analysis.lint.engine import Project
    from repro.analysis.lint.graph.callgraph import ProjectGraph

#: Dotted-qualname suffixes of functions that execute on shard workers.
WORKER_ENTRY_SUFFIXES: tuple[str, ...] = (
    "ServingRuntime._run_shard",
    "HarassmentMonitor.process_scored",
    "HarassmentMonitor.process_batch",
    "HarassmentMonitor.run",
    "Tracer.span",
    "Tracer.event",
    # Gateway subsystem entry points: handle() fans the admitted stream
    # out to shard workers, and feed drains run on consumer threads.
    "Gateway.handle",
    "AlertFeed.drain",
)

#: Constructors whose module-level instances count as shared observability
#: sinks for CONC002 (basename match after import resolution).
SHARED_SINK_TYPES = frozenset({"Tracer", "MetricsRegistry", "RunObserver"})


def _entry_label(n_entries: int) -> str:
    return f"{n_entries} worker entry point{'s' if n_entries != 1 else ''}"


@register
class SharedMutableStateOnWorkerPath(ProjectRule):
    id = "CONC001"
    summary = "mutable shared state reachable from a shard-worker call path"
    hint = (
        "keep worker state per-shard (instance attributes created per worker) "
        "or hand results to the main thread through the shard queue"
    )

    def check_project(self, project: "Project") -> Iterator[Finding]:
        graph = project.graph
        reachable = graph.reachable_from(WORKER_ENTRY_SUFFIXES)
        for qualname in sorted(reachable):
            info = graph.infos.get(qualname)
            if info is None:
                continue
            ctx = info.symbol.ctx
            for name in sorted(info.global_refs):
                yield ctx.finding(
                    self,
                    info.global_refs[name],
                    f"module-level mutable '{name}' is referenced from "
                    f"shard-worker call path '{qualname}'; module globals are "
                    "shared across every shard",
                )
            seen: set[tuple[str, str]] = set()
            for access in info.attr_accesses:
                if access.receiver_class is None:
                    continue
                cls = graph.table.classes.get(access.receiver_class)
                if cls is None or access.attr not in cls.class_mutable_attrs:
                    continue
                key = (cls.qualname, access.attr)
                if key in seen:
                    continue
                seen.add(key)
                yield ctx.finding(
                    self,
                    access.node,
                    f"class-level mutable '{cls.name}.{access.attr}' is "
                    f"touched from shard-worker call path '{qualname}'; "
                    "class attributes are shared by every instance, hence "
                    "every shard",
                )


@register
class SharedSinkMultiWriter(ProjectRule):
    id = "CONC002"
    summary = "shared Tracer/MetricsRegistry written from multiple worker entry points"
    hint = (
        "give each shard its own tracer/registry and absorb them on the main "
        "thread in shard-id order (Tracer.absorb / MetricsRegistry.merge)"
    )

    def check_project(self, project: "Project") -> Iterator[Finding]:
        graph = project.graph
        entries = graph.entry_functions(WORKER_ENTRY_SUFFIXES)
        if len(entries) < 2:
            return
        reach_by_entry = {
            entry: graph.reachable_from([entry]) for entry in entries
        }
        for module_name in sorted(graph.table.modules):
            mod = graph.table.modules[module_name]
            for name in sorted(mod.global_instances):
                ctor = mod.global_instances[name]
                if ctor.rpartition(".")[2] not in SHARED_SINK_TYPES:
                    continue
                writers = self._writers(graph, module_name, name)
                writing_entries = sorted({
                    entry
                    for entry in entries
                    for writer in writers
                    if writer in reach_by_entry[entry]
                })
                if len(writing_entries) < 2:
                    continue
                for writer in sorted(writers):
                    info = graph.infos[writer]
                    site = writers[writer]
                    yield info.symbol.ctx.finding(
                        self,
                        site,
                        f"shared {ctor.rpartition('.')[2].lower()} '{name}' "
                        f"is written from {_entry_label(len(writing_entries))} "
                        f"(via '{writer}'); single-writer-per-shard with an "
                        "ordered absorb is required for deterministic traces",
                    )

    @staticmethod
    def _writers(
        graph: "ProjectGraph", module_name: str, instance: str
    ) -> dict[str, object]:
        """Function qualname -> first method-call site on the instance."""
        writers: dict[str, object] = {}
        for qualname in sorted(graph.infos):
            info = graph.infos[qualname]
            if info.symbol.module != module_name:
                continue
            if instance not in info.global_instance_refs:
                continue
            for access in info.attr_accesses:
                if access.receiver_root == instance and access.is_call:
                    writers[qualname] = access.node
                    break
        return writers


@register
class MonitorStateOutsideOwner(ProjectRule):
    id = "CONC003"
    summary = "per-target monitor state accessed outside its owning class"
    hint = (
        "add a method on the owning class and call that; private per-target "
        "state must only be touched via the owner so shard routing keeps it "
        "isolated"
    )

    def check_project(self, project: "Project") -> Iterator[Finding]:
        graph = project.graph
        for qualname in sorted(graph.infos):
            info = graph.infos[qualname]
            owner = info.symbol.owner
            ctx = info.symbol.ctx
            seen: set[tuple[str, str]] = set()
            for access in info.attr_accesses:
                cls = None
                if access.receiver_class is not None:
                    cls = graph.table.classes.get(access.receiver_class)
                elif (
                    access.receiver_root is not None
                    and access.receiver_root != "self"
                ):
                    candidates = graph.table.private_attr_index.get(
                        access.attr, ()
                    )
                    if len(candidates) == 1:
                        cls = candidates[0]
                if cls is None or access.attr not in cls.private_mutable_attrs:
                    continue
                if owner is not None and owner.qualname == cls.qualname:
                    continue
                key = (cls.qualname, access.attr)
                if key in seen:
                    continue
                seen.add(key)
                yield ctx.finding(
                    self,
                    access.node,
                    f"private per-target state '{cls.name}.{access.attr}' is "
                    f"accessed from '{qualname}', outside its owning class; "
                    "state isolation is what makes shard merges exact",
                )
