"""Determinism rules: DET001 (global RNG), DET002 (wall clock /
process-salted values), DET003 (unordered iteration reaching output).

All three protect the same contract: a stage's output must be a pure
function of its inputs, its declared key material, and *named* RNG
streams — never of process start time, hash salting, or import order.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.engine import FileContext, Finding, Rule, register

#: Wall-clock / identity producers banned by DET002 (resolved via the
#: file's import aliases, so ``from datetime import datetime`` +
#: ``datetime.now()`` is caught too).  ``time.perf_counter`` and
#: ``time.monotonic`` stay legal: they feed run *reports*, never keys.
_DET002_BANNED: dict[str, str] = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "uuid.uuid1": "host/time-derived identifier",
    "uuid.uuid4": "per-process random identifier",
    "os.urandom": "per-process random bytes",
}

#: Serialization-ish sinks DET003 watches for unordered direct arguments.
_DET003_SINK_ATTRS = frozenset({"write", "writelines", "join"})
_DET003_SINK_NAMES = frozenset({"json.dump", "json.dumps"})


def _is_set_expr(ctx: FileContext, node: ast.expr) -> bool:
    """A literal/constructed set whose iteration order is hash-salted."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset") and ctx.is_builtin(node.func.id)
    return False


def _is_keys_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "keys"
        and not node.args
        and not node.keywords
    )


@register
class GlobalRandomness(Rule):
    """DET001: randomness must flow through ``repro.util.rng``.

    Module-level RNG state (``random.*``, ``numpy.random.*``) is shared
    across every caller in the process, so call *order* — which changes
    with ``jobs``, caching, and unrelated code motion — changes results.
    Named child generators from ``make_rng``/``child_rng`` do not.
    """

    id = "DET001"
    summary = "global/module-level RNG call"
    hint = (
        "derive a named generator via repro.util.rng.make_rng/child_rng "
        "and pass it explicitly"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve_imported(node.func)
            if resolved is None:
                continue
            if resolved == "random" or resolved.startswith("random."):
                yield ctx.finding(
                    self, node, f"call to stdlib global RNG `{resolved}`"
                )
            elif resolved.startswith("numpy.random."):
                yield ctx.finding(
                    self, node, f"call to numpy global-RNG namespace `{resolved}`"
                )


@register
class WallClock(Rule):
    """DET002: no wall clock, uuid, or salted ``hash()`` in keyed code.

    Cache keys and stage outputs must survive process restarts; anything
    derived from the clock, the host, or Python's per-process string
    hash salt silently breaks cache hits and cross-run equivalence.
    """

    id = "DET002"
    summary = "wall-clock / process-salted value"
    hint = (
        "thread timestamps through config, and derive stable identifiers "
        "with repro.util.rng.stable_hash"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve_imported(node.func)
            if resolved in _DET002_BANNED:
                yield ctx.finding(
                    self, node, f"`{resolved}` is a {_DET002_BANNED[resolved]}"
                )
            elif (
                isinstance(node.func, ast.Name)
                and node.func.id == "hash"
                and ctx.is_builtin("hash")
            ):
                yield ctx.finding(
                    self,
                    node,
                    "builtin `hash()` is salted per process for strings",
                    hint="use repro.util.rng.stable_hash instead",
                )


@register
class UnorderedIteration(Rule):
    """DET003: unordered set/keys iteration must not reach outputs.

    Set iteration order depends on the per-process hash salt, so any
    loop, comprehension, or serialization call fed directly by a set
    (or a sorted-less ``.keys()`` view handed to a writer) can produce
    different artifact bytes on different runs.  Wrap the iterable in
    ``sorted(...)`` — or iterate ``dict.fromkeys(...)`` when you need
    first-seen order — before the values can reach an artifact.
    """

    id = "DET003"
    summary = "unordered iteration feeding output"
    hint = "wrap the iterable in sorted(...) before iterating or serializing"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expr(ctx, node.iter):
                    yield ctx.finding(
                        self, node.iter, "loop iterates a set in hash order"
                    )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for generator in node.generators:
                    if _is_set_expr(ctx, generator.iter):
                        yield ctx.finding(
                            self,
                            generator.iter,
                            "comprehension iterates a set in hash order",
                        )
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    def _check_call(self, ctx: FileContext, node: ast.Call) -> Iterator[Finding]:
        # list(set(...)) / tuple(set(...)): materializes hash order.
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple")
            and ctx.is_builtin(node.func.id)
            and len(node.args) == 1
            and _is_set_expr(ctx, node.args[0])
        ):
            yield ctx.finding(
                self, node, f"`{node.func.id}(set(...))` materializes hash order"
            )
            return
        # Serialization sinks fed an unordered iterable directly.
        is_sink = (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _DET003_SINK_ATTRS
        ) or ctx.resolve_imported(node.func) in _DET003_SINK_NAMES
        if not is_sink:
            return
        for arg in node.args:
            if _is_set_expr(ctx, arg):
                yield ctx.finding(
                    self, arg, "serialization sink receives a bare set"
                )
            elif _is_keys_call(arg):
                yield ctx.finding(
                    self, arg, "serialization sink receives a raw .keys() view"
                )
