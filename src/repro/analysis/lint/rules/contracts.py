"""Telemetry merge-contract rules (MRG) backed by the project graph.

Per-shard telemetry is folded back together with ``merge()``; the merged
numbers are only trustworthy if every field participates.  PR 6 replaced
a reflection-based ``QueueAccounting.merge()`` precisely because a
hand-written merge had silently dropped a field — these rules check that
bug class structurally, forever:

- **MRG001** — a class defines ``merge()`` but some declared field
  (dataclass annotation order, else ``self.x = ...`` order in
  ``__init__``) is never referenced inside it: silent field loss on
  shard merge.
- **MRG002** — a field that ``merge()`` combines is neither a key in nor
  referenced by ``as_dict()``: the merged value exists but is invisible
  in every JSON snapshot and committed benchmark report.
- **MRG003** — a mergeable class has no ``populate_metrics()``
  projection, so the obs layer's metrics registry never sees it.

Field-reference analysis is transitive through same-class methods and
properties (``as_dict`` reporting ``self.mean`` counts as referencing
the fields ``mean`` reads), and a call to ``dataclasses.fields`` /
``asdict`` / ``vars`` inside a body marks every field referenced — the
MonitorStats fields-loop idiom is contract-complete by construction.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.lint.engine import Finding, ProjectRule, register
from repro.analysis.lint.graph.symbols import ClassSymbol, FunctionSymbol

if TYPE_CHECKING:
    from repro.analysis.lint.engine import Project
    from repro.analysis.lint.graph.callgraph import ProjectGraph

#: Calls that enumerate every field reflectively; seeing one inside a
#: body means "all fields referenced".
_REFLECTIVE = ("fields", "asdict", "vars", "astuple")


class _BodyFacts:
    """Attr references, dict keys, and reflection flag for one method."""

    def __init__(self) -> None:
        self.attr_refs: set[str] = set()
        self.dict_keys: set[str] = set()
        self.reflective = False

    def merge_from(self, other: "_BodyFacts") -> None:
        self.attr_refs |= other.attr_refs
        self.dict_keys |= other.dict_keys
        self.reflective = self.reflective or other.reflective


def _collect_body_facts(
    graph: "ProjectGraph",
    cls: ClassSymbol,
    method: FunctionSymbol,
    seen: set[str],
) -> _BodyFacts:
    """Facts for ``method``, expanded through same-class callees."""
    facts = _BodyFacts()
    if method.qualname in seen:
        return facts
    seen.add(method.qualname)
    info = graph.infos.get(method.qualname)
    if info is None:
        return facts
    for access in info.attr_accesses:
        facts.attr_refs.add(access.attr)
        # ``self.mean`` may be a property of the same class — expand it.
        target = graph.find_method(cls, access.attr)
        if target is not None:
            facts.merge_from(_collect_body_facts(graph, cls, target, seen))
    for node in ast.walk(method.node):
        if isinstance(node, ast.Call):
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None
            )
            if name in _REFLECTIVE:
                facts.reflective = True
            for keyword in node.keywords:
                if keyword.arg is not None:
                    facts.attr_refs.add(keyword.arg)
            if name == "dict":
                facts.dict_keys.update(
                    kw.arg for kw in node.keywords if kw.arg is not None
                )
        elif isinstance(node, ast.Dict):
            facts.dict_keys.update(
                key.value
                for key in node.keys
                if isinstance(key, ast.Constant) and isinstance(key.value, str)
            )
        elif isinstance(node, ast.Subscript):
            if isinstance(node.slice, ast.Constant) and isinstance(
                node.slice.value, str
            ):
                facts.dict_keys.add(node.slice.value)
    for callee in info.callees:
        fn = graph.table.functions.get(callee)
        if fn is None or fn.owner is None or fn.name.startswith("__"):
            # ``__init__`` is excluded on purpose: ``Cls()`` inside
            # merge() initialises *defaults*, it does not combine the
            # operands' fields — expanding through it would mask every
            # dropped field in a plain (non-dataclass) merge.
            continue
        if (
            fn.owner.qualname == cls.qualname
            or graph.find_method(cls, fn.name) is fn
        ):
            facts.merge_from(_collect_body_facts(graph, cls, fn, seen))
    return facts


def _mergeable_classes(graph: "ProjectGraph") -> Iterator[ClassSymbol]:
    """Classes that *define* (not inherit) a ``merge`` method."""
    for qualname in sorted(graph.table.classes):
        cls = graph.table.classes[qualname]
        if "merge" in cls.methods:
            yield cls


@register
class MergeDropsFields(ProjectRule):
    id = "MRG001"
    summary = "merge() does not reference every declared field"
    hint = (
        "combine every field explicitly (the QueueAccounting idiom) or loop "
        "over dataclasses.fields(...) so new fields cannot be forgotten"
    )

    def check_project(self, project: "Project") -> Iterator[Finding]:
        graph = project.graph
        for cls in _mergeable_classes(graph):
            if not cls.fields:
                continue
            facts = _collect_body_facts(
                graph, cls, cls.methods["merge"], set()
            )
            if facts.reflective:
                continue
            missing = [f for f in cls.fields if f not in facts.attr_refs]
            if missing:
                yield cls.ctx.finding(
                    self,
                    cls.methods["merge"].node,
                    f"{cls.name}.merge() never references field(s) "
                    f"{', '.join(repr(f) for f in missing)}; merged shards "
                    "would silently lose those values",
                )


@register
class AsDictOmitsMergedFields(ProjectRule):
    id = "MRG002"
    summary = "as_dict() omits fields that merge() combines"
    hint = (
        "report every merged field in as_dict() (as a key or via a derived "
        "value that reads it) so snapshots and benchmark reports see it"
    )

    def check_project(self, project: "Project") -> Iterator[Finding]:
        graph = project.graph
        for cls in _mergeable_classes(graph):
            as_dict = cls.methods.get("as_dict")
            if as_dict is None or not cls.fields:
                continue
            merge_facts = _collect_body_facts(
                graph, cls, cls.methods["merge"], set()
            )
            combined = (
                list(cls.fields)
                if merge_facts.reflective
                else [f for f in cls.fields if f in merge_facts.attr_refs]
            )
            dict_facts = _collect_body_facts(graph, cls, as_dict, set())
            if dict_facts.reflective:
                continue
            hidden = [
                f
                for f in combined
                if f not in dict_facts.dict_keys
                and f not in dict_facts.attr_refs
            ]
            if hidden:
                yield cls.ctx.finding(
                    self,
                    as_dict.node,
                    f"{cls.name}.as_dict() omits merged field(s) "
                    f"{', '.join(repr(f) for f in hidden)}; merge() combines "
                    "them but no snapshot ever shows the result",
                )


@register
class MergeableWithoutMetrics(ProjectRule):
    id = "MRG003"
    summary = "mergeable telemetry class has no populate_metrics()"
    hint = (
        "add populate_metrics(registry, prefix) projecting the class into "
        "counter/gauge/histogram families so the obs layer can see it"
    )

    def check_project(self, project: "Project") -> Iterator[Finding]:
        graph = project.graph
        for cls in _mergeable_classes(graph):
            if graph.find_method(cls, "populate_metrics") is None:
                yield cls.ctx.finding(
                    self,
                    cls.node,
                    f"{cls.name} defines merge() but no populate_metrics(); "
                    "its telemetry is invisible to the metrics registry",
                )
