"""Stage-purity rules: PUR001 (no side I/O), PUR002 (no mutable globals).

A *stage function* is any function this file hands to ``Engine.add`` —
as a bare name, a ``self.method`` reference, or wrapped in
``functools.partial`` — plus, by repo convention, any function named
``_stage_*``.  The engine caches, reorders, and parallelizes stage
calls freely; that is only sound when a stage touches nothing but its
arguments, its named RNG streams, and the artifact store.

Detection is per-file and syntactic: a function passed to an engine in
*another* module, or reached only through helpers, is not traced.  The
``_stage_*`` naming convention exists precisely so the common case
stays visible to this pass.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.engine import FileContext, Finding, Rule, register

_STAGE_NAME_PREFIX = "_stage_"
_SHARED_KEY = "purity.stage_functions"

#: ``pathlib.Path`` mutation methods flagged inside stage functions.
#: ``rename``/``replace`` are omitted on purpose: the attribute names
#: collide with ``str`` methods and cannot be distinguished statically.
_PATH_MUTATORS = frozenset({
    "write_text", "write_bytes", "mkdir", "touch", "unlink", "rmdir",
    "symlink_to", "hardlink_to", "chmod",
})

#: Filesystem-mutating module functions (resolved through import aliases).
_MODULE_MUTATORS = frozenset({
    "os.remove", "os.unlink", "os.rename", "os.replace", "os.rmdir",
    "os.removedirs", "os.mkdir", "os.makedirs", "os.chmod", "os.symlink",
    "os.link", "os.truncate",
    "shutil.rmtree", "shutil.copy", "shutil.copy2", "shutil.copyfile",
    "shutil.copytree", "shutil.move",
})


def _callable_name(node: ast.expr) -> str | None:
    """The referenced function's bare name (unwraps functools.partial)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, (ast.Name, ast.Attribute))
        and (
            node.func.attr if isinstance(node.func, ast.Attribute)
            else node.func.id
        ) == "partial"
        and node.args
    ):
        return _callable_name(node.args[0])
    return None


def _receiver_is_engine(node: ast.expr) -> bool:
    """True for ``engine.add`` / ``self.engine.add`` style receivers."""
    if isinstance(node, ast.Name):
        return "engine" in node.id.lower()
    if isinstance(node, ast.Attribute):
        return "engine" in node.attr.lower()
    return False


def stage_function_names(ctx: FileContext) -> frozenset[str]:
    """Names of functions this file registers as engine stages.

    Computed once per file and shared between the purity rules via
    ``ctx.shared``.
    """
    cached = ctx.shared.get(_SHARED_KEY)
    if cached is not None:
        return cached  # type: ignore[return-value]
    names: set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name.startswith(_STAGE_NAME_PREFIX):
                names.add(node.name)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "add"
            and _receiver_is_engine(node.func.value)
        ):
            fn_node: ast.expr | None = None
            if len(node.args) >= 2:
                fn_node = node.args[1]
            else:
                for keyword in node.keywords:
                    if keyword.arg == "fn":
                        fn_node = keyword.value
            if fn_node is not None:
                name = _callable_name(fn_node)
                if name is not None:
                    names.add(name)
    result = frozenset(names)
    ctx.shared[_SHARED_KEY] = result
    return result


def _stage_defs(ctx: FileContext) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    wanted = stage_function_names(ctx)
    if not wanted:
        return
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name in wanted
        ):
            yield node


@register
class StageSideIO(Rule):
    """PUR001: stage outputs flow through the artifact store, full stop.

    A stage that opens files or mutates the filesystem behind the
    engine's back breaks cache equivalence twice over: a warm run skips
    the side effect entirely, and a parallel run reorders it.  The
    ``ArtifactStore`` codecs are the one sanctioned write path.
    """

    id = "PUR001"
    summary = "stage function performs side I/O"
    hint = (
        "return the value and let the stage's ArtifactStore codec persist "
        "it (engine.store is the only sanctioned write path)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for stage in _stage_defs(ctx):
            for node in ast.walk(stage):
                if not isinstance(node, ast.Call):
                    continue
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id == "open"
                    and ctx.is_builtin("open")
                ):
                    yield ctx.finding(
                        self, node,
                        f"stage `{stage.name}` calls builtin `open()`",
                    )
                    continue
                resolved = ctx.resolve_imported(node.func)
                if resolved in _MODULE_MUTATORS:
                    yield ctx.finding(
                        self, node,
                        f"stage `{stage.name}` calls filesystem mutator "
                        f"`{resolved}`",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _PATH_MUTATORS
                ):
                    yield ctx.finding(
                        self, node,
                        f"stage `{stage.name}` calls path mutator "
                        f"`.{node.func.attr}()`",
                    )


@register
class StageMutableGlobal(Rule):
    """PUR002: stage functions must not read module-level mutable state.

    A module-level dict/list/set read inside a stage is invisible to the
    stage's cache key, so mutating it changes results without changing
    any key — the exact drift the engine exists to prevent.  ALL_CAPS
    module constants are exempt by convention (treated as frozen).
    """

    id = "PUR002"
    summary = "stage function reads a module-level mutable global"
    hint = (
        "pass the value in as a stage input or key material, or rename it "
        "to ALL_CAPS and treat it as immutable"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        mutable = self._mutable_globals(ctx)
        if not mutable:
            return
        for stage in _stage_defs(ctx):
            local = self._local_bindings(stage)
            seen: set[str] = set()
            for node in ast.walk(stage):
                if (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id in mutable
                    and node.id not in local
                    and node.id not in seen
                ):
                    seen.add(node.id)
                    yield ctx.finding(
                        self, node,
                        f"stage `{stage.name}` reads mutable module global "
                        f"`{node.id}`",
                    )

    @staticmethod
    def _mutable_globals(ctx: FileContext) -> set[str]:
        mutable: set[str] = set()
        for node in ctx.tree.body:
            if isinstance(node, ast.Assign):
                targets = [t for t in node.targets if isinstance(t, ast.Name)]
                value = node.value
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                targets = [node.target]
                value = node.value
            else:
                continue
            if value is None or not _is_mutable_literal(ctx, value):
                continue
            for target in targets:
                if not target.id.isupper():
                    mutable.add(target.id)
        return mutable

    @staticmethod
    def _local_bindings(stage: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
        args = stage.args
        local = {
            a.arg
            for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        }
        for extra in (args.vararg, args.kwarg):
            if extra is not None:
                local.add(extra.arg)
        for node in ast.walk(stage):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                local.add(node.id)
        return local


def _is_mutable_literal(ctx: FileContext, node: ast.expr) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set,
                         ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        name = node.func.id
        if name in ("dict", "list", "set") and ctx.is_builtin(name):
            return True
        resolved = ctx.resolve_imported(node.func)
        return resolved in (
            "collections.defaultdict", "collections.Counter",
            "collections.OrderedDict", "collections.deque",
        )
    return False
