"""Committed-baseline support: grandfather old findings, gate new ones.

The baseline is a JSON file committed at the repo root.  Each entry
names a finding by ``(path, rule, snippet)`` — the stripped source line
rather than a line number, so edits elsewhere in the file do not
un-baseline it — plus a human ``justification`` explaining why the
violation is tolerated.  ``repro lint`` then fails only on findings
absent from the baseline, and ``--update-baseline`` rewrites the file:
entries whose finding disappeared (the code was fixed) expire, new
findings are added with a TODO justification for the author to fill in.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Sequence

from repro.analysis.lint.engine import Finding

_TODO_JUSTIFICATION = "TODO: justify or fix"


@dataclasses.dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding."""

    path: str
    rule: str
    snippet: str
    justification: str = _TODO_JUSTIFICATION

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.path, self.rule, self.snippet)


@dataclasses.dataclass(frozen=True)
class BaselineSplit:
    """How one lint run relates to the baseline."""

    new: tuple[Finding, ...]  # findings the gate must fail on
    baselined: tuple[Finding, ...]  # findings covered by an entry
    stale: tuple[BaselineEntry, ...]  # entries whose finding is gone


@dataclasses.dataclass(frozen=True)
class Baseline:
    """An ordered set of grandfathered findings."""

    entries: tuple[BaselineEntry, ...] = ()

    @classmethod
    def load(cls, path: str | pathlib.Path | None) -> "Baseline":
        """Read a baseline file; a missing path means an empty baseline."""
        if path is None or not pathlib.Path(path).exists():
            return cls()
        payload = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
        entries = tuple(
            BaselineEntry(
                path=raw["path"],
                rule=raw["rule"],
                snippet=raw["snippet"],
                justification=raw.get("justification", _TODO_JUSTIFICATION),
            )
            for raw in payload.get("entries", ())
        )
        return cls(entries=entries)

    def save(self, path: str | pathlib.Path) -> None:
        payload = {
            "version": 1,
            "entries": [
                dataclasses.asdict(entry)
                for entry in sorted(self.entries, key=lambda e: e.key)
            ],
        }
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        pathlib.Path(path).write_text(text, encoding="utf-8")

    def split(self, findings: Sequence[Finding]) -> BaselineSplit:
        """Partition ``findings`` into new vs baselined, and expire stale."""
        by_key = {entry.key: entry for entry in self.entries}
        new: list[Finding] = []
        baselined: list[Finding] = []
        matched: set[tuple[str, str, str]] = set()
        for finding in findings:
            entry = by_key.get(finding.baseline_key)
            if entry is None:
                new.append(finding)
            else:
                baselined.append(finding)
                matched.add(entry.key)
        stale = tuple(e for e in self.entries if e.key not in matched)
        return BaselineSplit(
            new=tuple(new), baselined=tuple(baselined), stale=stale
        )

    def updated(self, findings: Sequence[Finding]) -> "Baseline":
        """A baseline covering exactly ``findings``.

        Justifications written by a human survive the rewrite; findings
        seen for the first time get a TODO placeholder.
        """
        previous = {entry.key: entry for entry in self.entries}
        fresh: dict[tuple[str, str, str], BaselineEntry] = {}
        for finding in findings:
            key = finding.baseline_key
            if key in fresh:
                continue
            kept = previous.get(key)
            fresh[key] = kept if kept is not None else BaselineEntry(
                path=finding.path, rule=finding.rule, snippet=finding.snippet
            )
        return Baseline(entries=tuple(fresh[k] for k in sorted(fresh)))
