"""Project-wide symbol table and call graph for graph-backed lint rules.

The per-file rule pack (``DET*``/``PUR*``) sees one file at a time; the
concurrency and merge-contract rules (``CONC*``/``MRG*``) need to know
what the *project* looks like: which functions call which, which classes
own which mutable state, and what is reachable from the serving
runtime's shard-worker entry points.  This package builds that view from
the engine's existing one-parse-per-file :class:`FileContext` objects —
no second ``ast.parse`` ever runs:

- :mod:`symbols` extracts per-file symbols (modules, classes with their
  fields / class-level and instance attributes / bases, functions
  including nested ones) into a project-wide table keyed by dotted
  qualname;
- :mod:`callgraph` resolves call sites against that table (imports and
  aliases, ``self.method()`` with base-class lookup, receivers typed by
  annotation or constructor assignment, a unique-method-name fallback)
  and answers reachability queries.

The graph is built lazily by :class:`repro.analysis.lint.engine.Project`
and cached there, so every graph-backed rule in a run shares a single
construction (``repro lint --stats`` prints the build count to prove
it).
"""

from repro.analysis.lint.graph.callgraph import ProjectGraph, build_graph
from repro.analysis.lint.graph.symbols import (
    ClassSymbol,
    FunctionSymbol,
    ModuleSymbol,
    SymbolTable,
    build_symbol_table,
    module_name_for,
)

__all__ = [
    "ClassSymbol",
    "FunctionSymbol",
    "ModuleSymbol",
    "ProjectGraph",
    "SymbolTable",
    "build_graph",
    "build_symbol_table",
    "module_name_for",
]
