"""Call-graph construction and reachability over the symbol table.

Resolution is deliberately conservative — an edge is added only when the
callee can be named with confidence — plus one pragmatic fallback that
the serving runtime's factory indirection needs:

1. **Bare names** resolve through the lexical scope chain (nested def,
   enclosing function, module) and then the file's import aliases, so
   ``from repro.score.core import extract_targets`` and
   ``import repro.score.core as sc; sc.extract_targets`` both produce
   the same edge.  Calling a project class adds an edge to its
   ``__init__`` and types the assigned variable.
2. **Attribute calls** resolve when the receiver's class is known:
   ``self``/``cls``, a parameter annotated with a project class, a local
   assigned from a constructor, or ``self.attr`` where ``__init__``
   assigned a constructor to that attribute.  Method lookup walks base
   classes, so a subclass call resolves to the inherited definition.
3. **Unique-method fallback**: an attribute call whose receiver cannot
   be typed still resolves when exactly one class in the project defines
   a method with that name (``monitor.process_scored`` behind a factory
   resolves to ``HarassmentMonitor.process_scored``).  Ambiguous names
   produce no edge — missing edges make the race rules quieter, never
   wrong about what they do flag.

Bodies of nested ``def``s are analysed as their own graph nodes (with an
edge from the encloser at the call site), so worker closures like the
shard loop's ``offer``/``score`` helpers participate in reachability.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Iterable, Iterator, Sequence

from repro.analysis.lint.engine import FileContext
from repro.analysis.lint.graph.symbols import (
    ClassSymbol,
    FunctionSymbol,
    SymbolTable,
    build_symbol_table,
)


@dataclasses.dataclass(frozen=True)
class AttrAccess:
    """One ``receiver.attr`` site inside a function body."""

    attr: str
    node: ast.Attribute
    #: leftmost receiver name ("self", a local, a module-level binding)
    receiver_root: str | None
    #: resolved class qualname of the receiver, when typable
    receiver_class: str | None
    is_store: bool
    #: the access is the callee of a Call (``receiver.attr(...)``)
    is_call: bool


@dataclasses.dataclass
class FunctionInfo:
    """Everything the rules need to know about one function body."""

    symbol: FunctionSymbol
    callees: tuple[str, ...] = ()
    #: module-level mutable-container bindings referenced (name -> site)
    global_refs: dict[str, ast.AST] = dataclasses.field(default_factory=dict)
    #: module-level constructed instances referenced (name -> site)
    global_instance_refs: dict[str, ast.AST] = dataclasses.field(
        default_factory=dict
    )
    attr_accesses: tuple[AttrAccess, ...] = ()


def _own_body(fn_node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs/classes."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn_node))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _local_bindings(fn_node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = fn_node.args
    local = {
        a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    }
    for extra in (args.vararg, args.kwarg):
        if extra is not None:
            local.add(extra.arg)
    for node in _own_body(fn_node):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            local.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            local.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name != "*":
                    local.add(alias.asname or alias.name.partition(".")[0])
    return local


def _dotted(node: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class ProjectGraph:
    """Symbol table + call edges + reachability queries."""

    def __init__(self, table: SymbolTable) -> None:
        self.table = table
        self.infos: dict[str, FunctionInfo] = {}
        self._build()

    # -- name resolution ---------------------------------------------------

    def _qualify(self, ctx: FileContext, module: str, dotted: str) -> str | None:
        """Project qualname for a dotted reference written in ``module``."""
        root, _, rest = dotted.partition(".")
        target = ctx.imports.get(root)
        if target is not None:
            return f"{target}.{rest}" if rest else target
        # Same-module reference.
        return f"{module}.{dotted}"

    def resolve_class(
        self, ctx: FileContext, module: str, dotted: str | None
    ) -> ClassSymbol | None:
        if dotted is None:
            return None
        qualified = self._qualify(ctx, module, dotted)
        if qualified is None:
            return None
        found = self.table.classes.get(qualified)
        if found is not None:
            return found
        # An import may name the symbol through a re-exporting package
        # (``from repro.serve import ServingRuntime``); fall back to the
        # basename when exactly one project class carries it.
        basename = dotted.rpartition(".")[2]
        matches = [
            self.table.classes[qualname]
            for qualname in sorted(self.table.classes)
            if self.table.classes[qualname].name == basename
        ]
        return matches[0] if len(matches) == 1 else None

    def find_method(
        self, cls: ClassSymbol, name: str
    ) -> FunctionSymbol | None:
        """Method lookup walking resolvable base classes (cycle-safe)."""
        seen: set[str] = set()
        queue = [cls]
        while queue:
            current = queue.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            method = current.methods.get(name)
            if method is not None:
                return method
            for base in current.bases:
                resolved = self.resolve_class(current.ctx, current.module, base)
                if resolved is not None:
                    queue.append(resolved)
        return None

    def has_method(self, cls: ClassSymbol, name: str) -> bool:
        return self.find_method(cls, name) is not None

    # -- construction ------------------------------------------------------

    def _build(self) -> None:
        for qualname in sorted(self.table.functions):
            self.infos[qualname] = self._analyse(self.table.functions[qualname])

    def _receiver_env(self, fn: FunctionSymbol) -> dict[str, ClassSymbol]:
        """Local name -> class, from self/cls, annotations, constructors."""
        env: dict[str, ClassSymbol] = {}
        ctx, module = fn.ctx, fn.module
        if fn.owner is not None:
            env["self"] = fn.owner
            env["cls"] = fn.owner
        args = fn.node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            annotated = self.resolve_class(
                ctx, module, _annotation_text(arg.annotation)
            )
            if annotated is not None:
                env[arg.arg] = annotated
        for node in _own_body(fn.node):
            if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
                continue
            ctor = self.resolve_class(ctx, module, _dotted(node.value.func))
            if ctor is None:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    env[target.id] = ctor
        # A class used as a receiver names itself (``Cache.shared[...]``),
        # whether defined in this module or imported from another.
        mod = self.table.modules.get(module)
        if mod is not None:
            for name, cls in mod.classes.items():
                env.setdefault(name, cls)
        for alias, target in ctx.imports.items():
            imported = self.table.classes.get(target)
            if imported is not None:
                env.setdefault(alias, imported)
        return env

    def _analyse(self, fn: FunctionSymbol) -> FunctionInfo:
        ctx, module = fn.ctx, fn.module
        mod = self.table.modules.get(module)
        local = _local_bindings(fn.node)
        env = self._receiver_env(fn)
        callees: dict[str, None] = {}
        global_refs: dict[str, ast.AST] = {}
        instance_refs: dict[str, ast.AST] = {}
        accesses: list[AttrAccess] = []
        call_funcs = {
            id(node.func)
            for node in _own_body(fn.node)
            if isinstance(node, ast.Call)
        }
        for node in _own_body(fn.node):
            if isinstance(node, ast.Call):
                callee = self._resolve_call(fn, node, local, env)
                if callee is not None:
                    callees[callee] = None
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id in local or mod is None:
                    continue
                if node.id in mod.mutable_globals:
                    global_refs.setdefault(node.id, node)
                if node.id in mod.global_instances:
                    instance_refs.setdefault(node.id, node)
            elif isinstance(node, ast.Attribute):
                root_node = node.value
                while isinstance(root_node, ast.Attribute):
                    root_node = root_node.value
                root = root_node.id if isinstance(root_node, ast.Name) else None
                receiver_class: str | None = None
                if isinstance(node.value, ast.Name):
                    typed = env.get(node.value.id)
                    if typed is not None:
                        receiver_class = typed.qualname
                elif (
                    isinstance(node.value, ast.Attribute)
                    and isinstance(node.value.value, ast.Name)
                    and node.value.value.id == "self"
                    and fn.owner is not None
                ):
                    ctor = fn.owner.instance_attr_types.get(node.value.attr)
                    resolved = self.resolve_class(ctx, module, ctor)
                    if resolved is not None:
                        receiver_class = resolved.qualname
                accesses.append(AttrAccess(
                    attr=node.attr,
                    node=node,
                    receiver_root=root,
                    receiver_class=receiver_class,
                    is_store=isinstance(node.ctx, (ast.Store, ast.Del)),
                    is_call=id(node) in call_funcs,
                ))
        return FunctionInfo(
            symbol=fn,
            callees=tuple(callees),
            global_refs=global_refs,
            global_instance_refs=instance_refs,
            attr_accesses=tuple(accesses),
        )

    def _resolve_call(
        self,
        fn: FunctionSymbol,
        node: ast.Call,
        local: set[str],
        env: dict[str, ClassSymbol],
    ) -> str | None:
        func = node.func
        ctx, module = fn.ctx, fn.module
        if isinstance(func, ast.Name):
            name = func.id
            # Lexical scope chain: nested def, enclosing function, module.
            scope: FunctionSymbol | None = fn
            while scope is not None:
                candidate = f"{scope.qualname}.{name}"
                if candidate in self.table.functions:
                    return candidate
                scope = scope.parent
            if fn.owner is not None:
                candidate = f"{fn.owner.qualname}.{name}"
                if candidate in self.table.functions:
                    return candidate
            if name in local and name not in ctx.imports:
                return None  # a local rebinding we cannot see through
            qualified = self._qualify(ctx, module, name)
            if qualified in self.table.functions:
                return qualified
            cls = self.table.classes.get(qualified) if qualified else None
            if cls is None:
                cls_by_name = self.resolve_class(ctx, module, name)
                if cls_by_name is not None and name in ctx.imports:
                    cls = cls_by_name
            if cls is not None:
                init = f"{cls.qualname}.__init__"
                return init if init in self.table.functions else None
            return None
        if isinstance(func, ast.Attribute):
            # Module-aliased call: ``queueing.BoundedQueue(...)``.
            dotted = _dotted(func)
            if dotted is not None:
                qualified = self._qualify(ctx, module, dotted)
                if qualified in self.table.functions:
                    return qualified
                cls = self.table.classes.get(qualified) if qualified else None
                if cls is not None:
                    init = f"{cls.qualname}.__init__"
                    return init if init in self.table.functions else None
            # Typed receiver.
            receiver_cls: ClassSymbol | None = None
            if isinstance(func.value, ast.Name):
                receiver_cls = env.get(func.value.id)
            elif (
                isinstance(func.value, ast.Attribute)
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id == "self"
                and fn.owner is not None
            ):
                ctor = fn.owner.instance_attr_types.get(func.value.attr)
                receiver_cls = self.resolve_class(ctx, module, ctor)
            if receiver_cls is not None:
                method = self.find_method(receiver_cls, func.attr)
                if method is not None:
                    return method.qualname
                return None
            # Unique-method fallback.
            candidates = self.table.method_index.get(func.attr, ())
            if len(candidates) == 1:
                return candidates[0].qualname
        return None

    # -- queries -----------------------------------------------------------

    @property
    def n_functions(self) -> int:
        return len(self.infos)

    @property
    def n_edges(self) -> int:
        return sum(len(info.callees) for info in self.infos.values())

    def callees(self, qualname: str) -> tuple[str, ...]:
        info = self.infos.get(qualname)
        return info.callees if info is not None else ()

    def entry_functions(self, suffixes: Sequence[str]) -> tuple[str, ...]:
        """Functions whose qualname matches any dotted suffix."""
        matches = [
            qualname
            for qualname in sorted(self.infos)
            if any(
                qualname == suffix or qualname.endswith("." + suffix)
                for suffix in suffixes
            )
        ]
        return tuple(matches)

    def reachable_from(self, suffixes: Sequence[str]) -> frozenset[str]:
        """Every function reachable (inclusive) from matching entries."""
        seen: set[str] = set()
        queue = list(self.entry_functions(suffixes))
        while queue:
            current = queue.pop()
            if current in seen:
                continue
            seen.add(current)
            queue.extend(self.callees(current))
        return frozenset(seen)


def _annotation_text(node: ast.expr | None) -> str | None:
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, (ast.Name, ast.Attribute)):
        return _dotted(node)
    return None


def build_graph(contexts: Iterable[FileContext]) -> ProjectGraph:
    """Build the project call graph from already-parsed file contexts."""
    return ProjectGraph(build_symbol_table(contexts))
