"""Project symbol table: modules, classes, functions, and their state.

One :class:`ModuleSymbol` per linted file, built from the engine's
already-parsed :class:`~repro.analysis.lint.engine.FileContext` (this
module never parses).  Symbols are keyed by dotted *qualname* —
``repro.serve.runtime.ServingRuntime._run_shard`` — derived from the
file's path, so cross-file references resolve through the same names
the import map produces.

Beyond names, class symbols record the state the concurrency and
merge-contract rules reason about:

- ``fields``: dataclass fields (annotated class-body assignments under a
  ``@dataclass`` decorator) or, for plain classes, every ``self.x = ...``
  target in ``__init__`` — the "what must ``merge()`` preserve" set;
- ``class_mutable_attrs``: class-body bindings of mutable containers
  (shared across every instance, hence across every shard);
- ``instance_attr_types``: ``self.x = SomeClass(...)`` constructor
  assignments in ``__init__``, used to type ``self.x.method()`` calls;
- ``private_mutable_attrs``: underscore-prefixed instance attributes
  initialised to mutable containers — per-target monitor state that
  must never be touched from outside its owning shard's call path.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
from typing import Iterable, Mapping

from repro.analysis.lint.engine import FileContext

#: Constructor calls (resolved through import aliases) that produce a
#: mutable container, in addition to dict/list/set literals and builtins.
MUTABLE_CONSTRUCTORS = frozenset({
    "collections.defaultdict", "collections.Counter",
    "collections.OrderedDict", "collections.deque",
})


def module_name_for(display_path: str) -> str:
    """Dotted module name for a linted file.

    Preference order: the path tail after the last ``src`` component
    (the repo layout), else from the first ``repro`` component (already
    repo-relative), else — for fixtures and scratch files — the bare
    stem.  ``__init__.py`` maps to its package.
    """
    parts = list(pathlib.PurePosixPath(display_path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    elif "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:]
    return ".".join(parts) if parts else display_path


def _is_mutable_value(node: ast.expr, imports: Mapping[str, str]) -> bool:
    """A dict/list/set literal, comprehension, or mutable constructor."""
    if isinstance(node, (ast.Dict, ast.List, ast.Set,
                         ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in ("dict", "list", "set"):
                return True
            return imports.get(func.id) in MUTABLE_CONSTRUCTORS
        if isinstance(func, ast.Attribute):
            dotted = _dotted(func)
            if dotted is None:
                return False
            root, _, rest = dotted.partition(".")
            target = imports.get(root, root)
            return f"{target}.{rest}" in MUTABLE_CONSTRUCTORS
    return False


def _dotted(node: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _annotation_name(node: ast.expr | None) -> str | None:
    """Dotted name of a simple annotation (``X``, ``a.X``, ``"X"``)."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, (ast.Name, ast.Attribute)):
        return _dotted(node)
    return None


@dataclasses.dataclass
class FunctionSymbol:
    """One function or method definition (nested defs included)."""

    qualname: str
    name: str
    module: str
    ctx: FileContext
    node: ast.FunctionDef | ast.AsyncFunctionDef
    owner: "ClassSymbol | None" = None
    parent: "FunctionSymbol | None" = None

    @property
    def is_method(self) -> bool:
        return self.owner is not None and self.parent is None


@dataclasses.dataclass
class ClassSymbol:
    """One class definition plus the state shape its rules care about."""

    qualname: str
    name: str
    module: str
    ctx: FileContext
    node: ast.ClassDef
    #: base-class names as written (dotted), resolved lazily by the graph
    bases: tuple[str, ...] = ()
    is_dataclass: bool = False
    methods: dict[str, FunctionSymbol] = dataclasses.field(default_factory=dict)
    #: declared field order: dataclass annotations, else __init__ targets
    fields: tuple[str, ...] = ()
    #: class-body mutable container bindings (non-ALL_CAPS, non-dunder)
    class_mutable_attrs: dict[str, ast.AST] = dataclasses.field(
        default_factory=dict
    )
    #: ``self.x = Ctor(...)`` in __init__: attr -> dotted constructor name
    instance_attr_types: dict[str, str] = dataclasses.field(default_factory=dict)
    #: ``self._x = {}``-style private mutable state from __init__
    private_mutable_attrs: frozenset[str] = frozenset()


@dataclasses.dataclass
class ModuleSymbol:
    """One linted file as a module."""

    name: str
    ctx: FileContext
    functions: dict[str, FunctionSymbol] = dataclasses.field(default_factory=dict)
    classes: dict[str, ClassSymbol] = dataclasses.field(default_factory=dict)
    #: module-level mutable container bindings (name -> defining node),
    #: excluding ALL_CAPS frozen-by-convention constants and dunders
    mutable_globals: dict[str, ast.AST] = dataclasses.field(default_factory=dict)
    #: module-level constructed objects: ``TRACER = Tracer()`` and the
    #: like (name -> dotted constructor as resolved through imports).
    #: ALL_CAPS names are *included* here — a shared tracer is shared no
    #: matter how it is spelled.
    global_instances: dict[str, str] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class SymbolTable:
    """Qualname-keyed view over every linted file."""

    modules: dict[str, ModuleSymbol] = dataclasses.field(default_factory=dict)
    functions: dict[str, FunctionSymbol] = dataclasses.field(default_factory=dict)
    classes: dict[str, ClassSymbol] = dataclasses.field(default_factory=dict)
    #: bare method name -> every class method with that name
    method_index: dict[str, tuple[FunctionSymbol, ...]] = dataclasses.field(
        default_factory=dict
    )
    #: private mutable attr name -> every class declaring it
    private_attr_index: dict[str, tuple[ClassSymbol, ...]] = dataclasses.field(
        default_factory=dict
    )


def _harvest_init(cls: ClassSymbol) -> None:
    """Fill instance-attr facts from the class's ``__init__``."""
    init = cls.methods.get("__init__")
    attr_order: list[str] = []
    if init is None:
        cls.fields = cls.fields or ()
        return
    imports = cls.ctx.imports
    private: set[str] = set()
    for node in ast.walk(init.node):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            attr = target.attr
            if attr not in attr_order:
                attr_order.append(attr)
            if attr.startswith("_") and _is_mutable_value(node.value, imports):
                private.add(attr)
            if isinstance(node.value, ast.Call):
                ctor = _dotted(node.value.func)
                if ctor is not None:
                    cls.instance_attr_types.setdefault(attr, ctor)
    if not cls.fields:
        cls.fields = tuple(attr_order)
    cls.private_mutable_attrs = frozenset(private)


def _class_symbol(
    ctx: FileContext, module: str, node: ast.ClassDef
) -> ClassSymbol:
    qualname = f"{module}.{node.name}"
    is_dataclass = any(
        (_dotted(d.func if isinstance(d, ast.Call) else d) or "").split(".")[-1]
        == "dataclass"
        for d in node.decorator_list
    )
    bases = tuple(
        dotted for dotted in (_dotted(b) for b in node.bases) if dotted
    )
    cls = ClassSymbol(
        qualname=qualname,
        name=node.name,
        module=module,
        ctx=ctx,
        node=node,
        bases=bases,
        is_dataclass=is_dataclass,
    )
    dataclass_fields: list[str] = []
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            cls.methods[stmt.name] = FunctionSymbol(
                qualname=f"{qualname}.{stmt.name}",
                name=stmt.name,
                module=module,
                ctx=ctx,
                node=stmt,
                owner=cls,
            )
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            dataclass_fields.append(stmt.target.id)
            if (
                stmt.value is not None
                and not stmt.target.id.isupper()
                and not stmt.target.id.startswith("__")
                and _is_mutable_value(stmt.value, ctx.imports)
            ):
                cls.class_mutable_attrs[stmt.target.id] = stmt
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if (
                    isinstance(target, ast.Name)
                    and not target.id.isupper()
                    and not target.id.startswith("__")
                    and _is_mutable_value(stmt.value, ctx.imports)
                ):
                    cls.class_mutable_attrs[target.id] = stmt
    if is_dataclass:
        cls.fields = tuple(dataclass_fields)
    _harvest_init(cls)
    return cls


def _module_symbol(ctx: FileContext) -> ModuleSymbol:
    name = module_name_for(ctx.display_path)
    mod = ModuleSymbol(name=name, ctx=ctx)
    for stmt in ctx.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn = FunctionSymbol(
                qualname=f"{name}.{stmt.name}",
                name=stmt.name,
                module=name,
                ctx=ctx,
                node=stmt,
            )
            mod.functions[stmt.name] = fn
        elif isinstance(stmt, ast.ClassDef):
            mod.classes[stmt.name] = _class_symbol(ctx, name, stmt)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (
                [t for t in stmt.targets if isinstance(t, ast.Name)]
                if isinstance(stmt, ast.Assign)
                else [stmt.target] if isinstance(stmt.target, ast.Name) else []
            )
            value = stmt.value
            if value is None:
                continue
            if _is_mutable_value(value, ctx.imports):
                for target in targets:
                    if target.id.isupper() or target.id.startswith("__"):
                        continue
                    mod.mutable_globals[target.id] = stmt
            elif isinstance(value, ast.Call):
                ctor = _dotted(value.func)
                if ctor is not None:
                    root, _, rest = ctor.partition(".")
                    resolved = ctx.imports.get(root)
                    if resolved is not None:
                        ctor = f"{resolved}.{rest}" if rest else resolved
                    for target in targets:
                        mod.global_instances[target.id] = ctor
    return mod


def _nested_functions(table: SymbolTable, fn: FunctionSymbol) -> None:
    """Register defs nested directly or transitively inside ``fn``."""
    for stmt in ast.walk(fn.node):
        if stmt is fn.node:
            continue
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Attribute the nested def to its closest registered ancestor;
            # one level of qualname nesting is enough for call resolution.
            nested = FunctionSymbol(
                qualname=f"{fn.qualname}.{stmt.name}",
                name=stmt.name,
                module=fn.module,
                ctx=fn.ctx,
                node=stmt,
                owner=fn.owner,
                parent=fn,
            )
            table.functions.setdefault(nested.qualname, nested)


def build_symbol_table(contexts: Iterable[FileContext]) -> SymbolTable:
    """One table over every file, in deterministic path order."""
    table = SymbolTable()
    for ctx in sorted(contexts, key=lambda c: c.display_path):
        mod = _module_symbol(ctx)
        if mod.name in table.modules:
            # Same module linted twice (duplicate path forms): first wins.
            continue
        table.modules[mod.name] = mod
        for fn in mod.functions.values():
            table.functions[fn.qualname] = fn
            _nested_functions(table, fn)
        for cls in mod.classes.values():
            table.classes[cls.qualname] = cls
            for method in cls.methods.values():
                table.functions[method.qualname] = method
                _nested_functions(table, method)
    by_method: dict[str, list[FunctionSymbol]] = {}
    by_attr: dict[str, list[ClassSymbol]] = {}
    for qualname in sorted(table.functions):
        fn = table.functions[qualname]
        if fn.is_method:
            by_method.setdefault(fn.name, []).append(fn)
    for qualname in sorted(table.classes):
        cls = table.classes[qualname]
        for attr in sorted(cls.private_mutable_attrs):
            by_attr.setdefault(attr, []).append(cls)
    table.method_index = {name: tuple(fns) for name, fns in by_method.items()}
    table.private_attr_index = {
        attr: tuple(classes) for attr, classes in by_attr.items()
    }
    return table
