"""Attack-type prevalence per platform (paper §6.2, Tables 5 and 11)."""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

from repro.analysis.stats import TestResult, benjamini_hochberg, chi_square_two_way
from repro.taxonomy.attack_types import (
    PARENT_OF,
    SUBTYPES_OF,
    AttackSubtype,
    AttackType,
)
from repro.taxonomy.coding import CodedDocument
from repro.types import Platform


@dataclasses.dataclass(frozen=True)
class AttackTypeTable:
    """Counts and shares of attack types per platform column."""

    sizes: Mapping[Platform, int]
    counts: Mapping[object, Mapping[Platform, int]]  # AttackType or AttackSubtype

    def share(self, attack: object, platform: Platform) -> float:
        size = self.sizes.get(platform, 0)
        if size == 0:
            return 0.0
        return self.counts[attack].get(platform, 0) / size


def attack_type_table(
    coded_by_platform: Mapping[Platform, Sequence[CodedDocument]]
) -> AttackTypeTable:
    """Parent attack-type prevalence (Table 5).

    Columns do not sum to 100 % because a call can carry several attack
    types — counts are per-parent document presence.
    """
    sizes = {p: len(docs) for p, docs in coded_by_platform.items()}
    counts: dict[AttackType, dict[Platform, int]] = {a: {} for a in AttackType}
    for platform, docs in coded_by_platform.items():
        for doc in docs:
            for parent in doc.parents:
                counts[parent][platform] = counts[parent].get(platform, 0) + 1
    return AttackTypeTable(sizes=sizes, counts=counts)


def subtype_table(
    coded_by_platform: Mapping[Platform, Sequence[CodedDocument]]
) -> AttackTypeTable:
    """Subcategory prevalence (Table 11)."""
    sizes = {p: len(docs) for p, docs in coded_by_platform.items()}
    counts: dict[AttackSubtype, dict[Platform, int]] = {s: {} for s in AttackSubtype}
    for platform, docs in coded_by_platform.items():
        for doc in docs:
            # dict.fromkeys: first-seen-order dedupe (set order is hash-salted)
            for subtype in dict.fromkeys(doc.subtypes):
                counts[subtype][platform] = counts[subtype].get(platform, 0) + 1
    return AttackTypeTable(sizes=sizes, counts=counts)


def reporting_subtype_tests(
    table: AttackTypeTable, error_rate: float = 0.1
) -> list[TestResult]:
    """Chi-square tests of reporting-subcategory differences across data
    sets, BH-corrected (paper §6.2).

    One test per reporting subcategory, comparing its count against the
    rest of the reporting counts across platform columns.
    """
    platforms = [p for p, n in table.sizes.items() if n > 0]
    if len(platforms) < 2:
        raise ValueError("need at least two platforms to compare")
    reporting_subtypes = list(SUBTYPES_OF[AttackType.REPORTING])
    totals = {
        p: sum(table.counts[s].get(p, 0) for s in reporting_subtypes) for p in platforms
    }
    results = []
    for subtype in reporting_subtypes:
        row = [table.counts[subtype].get(p, 0) for p in platforms]
        rest = [max(totals[p] - row[i], 0) for i, p in enumerate(platforms)]
        if sum(row) == 0 or sum(rest) == 0:
            continue
        if any(row[i] + rest[i] == 0 for i in range(len(platforms))):
            continue  # a platform with no reporting calls at all
        results.append(
            chi_square_two_way([row, rest], name=subtype.value)
        )
    return benjamini_hochberg(results, error_rate=error_rate)


def parents_of_coded(doc: CodedDocument) -> frozenset[AttackType]:
    return frozenset(PARENT_OF[s] for s in doc.subtypes)
