"""Attack-type prevalence per inferred target gender (paper Table 10)."""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

from repro.analysis.stats import TestResult, chi_square_two_way
from repro.extraction.gender import infer_gender
from repro.taxonomy.attack_types import AttackSubtype
from repro.taxonomy.coding import CodedDocument
from repro.types import Gender


@dataclasses.dataclass(frozen=True)
class GenderSubtypeTable:
    sizes: Mapping[Gender, int]
    counts: Mapping[AttackSubtype, Mapping[Gender, int]]

    def share(self, subtype: AttackSubtype, gender: Gender) -> float:
        size = self.sizes.get(gender, 0)
        if size == 0:
            return 0.0
        return self.counts[subtype].get(gender, 0) / size


def gender_subtype_table(coded: Sequence[CodedDocument]) -> GenderSubtypeTable:
    """Build Table 10: subtype prevalence per pronoun-inferred gender.

    Gender is inferred from the text (§5.6), never read from ground truth
    — the analysis is exactly as blind as the paper's.
    """
    sizes: dict[Gender, int] = {g: 0 for g in Gender}
    counts: dict[AttackSubtype, dict[Gender, int]] = {s: {} for s in AttackSubtype}
    for doc in coded:
        gender = infer_gender(doc.document.text)
        sizes[gender] += 1
        # dict.fromkeys: first-seen-order dedupe (set order is hash-salted)
        for subtype in dict.fromkeys(doc.subtypes):
            counts[subtype][gender] = counts[subtype].get(gender, 0) + 1
    return GenderSubtypeTable(sizes=sizes, counts=counts)


def private_reputation_gender_test(table: GenderSubtypeTable) -> TestResult:
    """The paper's headline gender difference (§6.2): private reputational
    harm is disproportionately aimed at female-pronoun targets."""
    subtype = AttackSubtype.REPUTATIONAL_HARM_PRIVATE
    female_with = table.counts[subtype].get(Gender.FEMALE, 0)
    male_with = table.counts[subtype].get(Gender.MALE, 0)
    female_without = table.sizes[Gender.FEMALE] - female_with
    male_without = table.sizes[Gender.MALE] - male_with
    return chi_square_two_way(
        [[female_with, female_without], [male_with, male_without]],
        name="reputational_harm_private x gender",
    )
