"""Sensitivity of the paper's conclusions to threshold choice.

The annotated analysis sets depend on the §5.5 thresholds; a natural
robustness question is whether the headline findings (reporting dominates,
content leakage second, overloading concentrated off-boards) hold across
the plausible threshold range.  This module re-derives the Table-5 shares
at alternative thresholds using the pipeline's scores and the expert
oracle, and reports how stable each conclusion is.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

import numpy as np

from repro.analysis.attack_stats import attack_type_table
from repro.pipeline.results import PipelineResult
from repro.taxonomy.attack_types import AttackType
from repro.taxonomy.coding import ExpertCoder
from repro.types import Platform, Source
from repro.util.rng import make_rng


@dataclasses.dataclass(frozen=True)
class ThresholdSensitivity:
    """Table-5-style shares re-derived at several thresholds."""

    thresholds: tuple[float, ...]
    #: threshold -> platform -> attack type -> share
    shares: Mapping[float, Mapping[Platform, Mapping[AttackType, float]]]
    #: threshold -> platform -> set size
    sizes: Mapping[float, Mapping[Platform, int]]

    def dominant_attack(self, threshold: float, platform: Platform) -> AttackType:
        platform_shares = self.shares[threshold][platform]
        return max(platform_shares, key=platform_shares.get)

    def conclusion_stable(self, conclusion, min_size: int = 30) -> bool:
        """Does ``conclusion(shares_at_t)`` hold at every threshold?

        ``conclusion`` receives the per-platform share mapping for one
        threshold and returns a bool.  Platforms whose set at a threshold
        has fewer than ``min_size`` documents are excluded — a three-post
        column cannot overturn a conclusion.
        """
        for threshold in self.thresholds:
            filtered = {
                platform: platform_shares
                for platform, platform_shares in self.shares[threshold].items()
                if self.sizes[threshold].get(platform, 0) >= min_size
            }
            if filtered and not conclusion(filtered):
                return False
        return True


def threshold_sensitivity(
    result: PipelineResult,
    thresholds: Sequence[float] = (0.5, 0.7, 0.9),
    coder: ExpertCoder | None = None,
    max_per_platform: int = 4_000,
    seed: int = 0,
) -> ThresholdSensitivity:
    """Re-derive attack-type shares at each threshold.

    Documents scoring above each threshold are taxonomy-coded (text only);
    false positives naturally dilute the low-threshold columns, which is
    part of what the analysis measures.
    """
    if not thresholds:
        raise ValueError("need at least one threshold")
    coder = coder or ExpertCoder()
    rng = make_rng(seed)
    docs = result.documents
    scores = result.scores
    shares: dict[float, dict[Platform, dict[AttackType, float]]] = {}
    sizes: dict[float, dict[Platform, int]] = {}
    eligible_sources = set(result.outcomes)
    for threshold in thresholds:
        above = [
            i for i in np.flatnonzero(scores > threshold)
            if docs[int(i)].source in eligible_sources
        ]
        by_platform: dict[Platform, list] = {}
        for i in above:
            doc = docs[int(i)]
            by_platform.setdefault(doc.platform, []).append(doc)
        coded_by_platform = {}
        for platform, platform_docs in by_platform.items():
            if len(platform_docs) > max_per_platform:
                picks = rng.choice(len(platform_docs), max_per_platform, replace=False)
                platform_docs = [platform_docs[int(p)] for p in picks]
            coded_by_platform[platform] = [coder.code(d) for d in platform_docs]
        table = attack_type_table(coded_by_platform)
        shares[threshold] = {
            platform: {attack: table.share(attack, platform) for attack in AttackType}
            for platform in coded_by_platform
        }
        sizes[threshold] = dict(table.sizes)
    return ThresholdSensitivity(
        thresholds=tuple(thresholds), shares=shares, sizes=sizes
    )


def reporting_dominates(shares_at_t: Mapping[Platform, Mapping[AttackType, float]]) -> bool:
    """Per-platform version of the paper's headline conclusion."""
    for platform, platform_shares in shares_at_t.items():
        if not platform_shares:
            continue
        if max(platform_shares, key=platform_shares.get) is not AttackType.REPORTING:
            return False
    return True


def pooled_dominant_attack(sensitivity: ThresholdSensitivity, threshold: float) -> AttackType:
    """Size-weighted dominant attack type across platforms at one threshold."""
    pooled: dict[AttackType, float] = {attack: 0.0 for attack in AttackType}
    total = 0
    for platform, platform_shares in sensitivity.shares[threshold].items():
        n = sensitivity.sizes[threshold].get(platform, 0)
        total += n
        for attack, share in platform_shares.items():
            pooled[attack] += share * n
    if total == 0:
        raise ValueError(f"no documents above threshold {threshold}")
    return max(pooled, key=pooled.get)
