"""Evasion robustness of the filter classifiers (paper §3 risk analysis).

For each perturbation operator, the harness re-scores a set of true
positives after perturbation and reports the recall retained at the
deployment threshold — quantifying how much an adversary gains from each
cheap evasion, and where defenders should invest (e.g. normalisation).
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

import numpy as np

from repro.corpus.documents import Document
from repro.corpus.perturb import PERTURBATIONS
from repro.nlp.features import HashingVectorizer
from repro.util.rng import child_rng


@dataclasses.dataclass(frozen=True)
class RobustnessReport:
    """Recall under each perturbation, at a fixed decision threshold."""

    threshold: float
    n_documents: int
    clean_recall: float
    recall_by_perturbation: Mapping[str, float]

    def degradation(self, name: str) -> float:
        """Absolute recall lost to one perturbation."""
        return self.clean_recall - self.recall_by_perturbation[name]

    @property
    def worst_perturbation(self) -> str:
        return min(self.recall_by_perturbation, key=self.recall_by_perturbation.get)


def evasion_robustness(
    model,
    vectorizer: HashingVectorizer,
    positives: Sequence[Document],
    threshold: float = 0.5,
    seed: int = 0,
    max_documents: int = 1_000,
) -> RobustnessReport:
    """Score true positives clean and perturbed; report recall retained.

    ``model`` is any fitted classifier with ``predict_proba`` over the
    vectorizer's features (the pipeline's filter model family).
    """
    if not positives:
        raise ValueError("need at least one positive document")
    rng = child_rng(seed, "robustness")
    docs = list(positives)
    if len(docs) > max_documents:
        picks = rng.choice(len(docs), size=max_documents, replace=False)
        docs = [docs[int(i)] for i in picks]
    texts = [d.text for d in docs]
    clean_scores = model.predict_proba(vectorizer.transform_texts(texts))
    clean_recall = float((clean_scores > threshold).mean())
    recall_by_perturbation = {}
    for name, operator in PERTURBATIONS.items():
        perturbed = [operator(t, rng) for t in texts]
        scores = model.predict_proba(vectorizer.transform_texts(perturbed))
        recall_by_perturbation[name] = float((scores > threshold).mean())
    return RobustnessReport(
        threshold=threshold,
        n_documents=len(docs),
        clean_recall=clean_recall,
        recall_by_perturbation=recall_by_perturbation,
    )
