"""PII and target-gender extraction (paper §5.6)."""

from repro.extraction.pii import (
    PII_EXTRACTORS,
    extract_pii,
    extract_pii_batch,
    pii_categories_present,
    evaluate_extractors,
)
from repro.extraction.gender import infer_gender, evaluate_gender_inference

__all__ = [
    "PII_EXTRACTORS",
    "extract_pii",
    "extract_pii_batch",
    "pii_categories_present",
    "evaluate_extractors",
    "infer_gender",
    "evaluate_gender_inference",
]
