"""PII extraction with 12 precision-optimised regular expressions (§5.6).

The paper extracts nine PII categories: US street addresses, credit-card
numbers (one pattern per issuer, for precision), email addresses, Facebook
profiles, Instagram profiles, US phone numbers, US SSNs, Twitter handles,
and YouTube channels.  Social-media profiles use two pattern styles:

* profile URLs, with a stopword list removing reserved site-functionality
  paths that share the user-profile URL shape, and
* ``platform-name: username`` label style, with per-platform username
  grammars taken from each platform's documented rules.

All patterns are deliberately precision-first, matching the paper's
reported >= 95 % accuracy on a labelled dox sample.
"""

from __future__ import annotations

import re
from typing import Iterable, Mapping, Sequence

from repro.corpus.documents import Document
from repro.util.cache import LRUCache

_STREET_TYPES = r"(?:St|Ave|Blvd|Dr|Ln|Rd|Ct|Way|Street|Avenue|Boulevard|Drive|Lane|Road|Court)"

#: Reserved path segments that look like profile URLs but are not.
_FACEBOOK_STOPWORDS = (
    "login", "pages", "groups", "events", "marketplace", "watch", "help",
    "privacy", "settings", "friends", "photos", "sharer", "share",
)
_INSTAGRAM_STOPWORDS = ("explore", "accounts", "about", "developer", "directory", "legal")
_TWITTER_STOPWORDS = ("home", "search", "explore", "settings", "i", "intent", "hashtag", "share")

def _url_pattern(domain: str, username: str, stopwords: Sequence[str]) -> re.Pattern[str]:
    stop = "|".join(stopwords)
    return re.compile(
        rf"(?:https?://)?(?:www\.)?{domain}/(?!(?:{stop})\b)({username})",
        re.IGNORECASE,
    )

def _label_pattern(names: str, username: str) -> re.Pattern[str]:
    # The negative lookahead keeps "Facebook: https://facebook.com/x" from
    # capturing "https" as a username (the URL pattern handles that form).
    return re.compile(
        rf"\b(?:{names})\s*[:\-]\s*(?!https?://)@?({username})", re.IGNORECASE
    )


#: The 12 regular expressions, grouped into the 9 PII categories.
PII_EXTRACTORS: Mapping[str, tuple[re.Pattern[str], ...]] = {
    "address": (
        re.compile(
            rf"\b\d{{1,5}}\s+[A-Z][A-Za-z]+\s+{_STREET_TYPES}\b"
            rf"(?:\s*,\s*[A-Z][A-Za-z ]+,?\s+[A-Z]{{2}}\s+\d{{5}}(?:-\d{{4}})?)?"
        ),
    ),
    "credit_card": (
        re.compile(r"\b4\d{3}[ -]?\d{4}[ -]?\d{4}[ -]?\d{4}\b"),  # Visa
        re.compile(r"\b5[1-5]\d{2}[ -]?\d{4}[ -]?\d{4}[ -]?\d{4}\b"),  # Mastercard
        re.compile(r"\b3[47]\d{2}[ -]?\d{6}[ -]?\d{5}\b"),  # Amex
        re.compile(r"\b6(?:011|5\d{2})[ -]?\d{4}[ -]?\d{4}[ -]?\d{4}\b"),  # Discover
    ),
    "email": (
        re.compile(r"\b[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+\.[A-Za-z]{2,}\b"),
    ),
    "facebook": (
        _url_pattern(r"facebook\.com", r"[A-Za-z0-9.]{5,50}", _FACEBOOK_STOPWORDS),
        _label_pattern("facebook|fb", r"[A-Za-z0-9.]{5,50}"),
    ),
    "instagram": (
        _url_pattern(r"instagram\.com", r"[A-Za-z0-9_.]{2,30}", _INSTAGRAM_STOPWORDS),
        _label_pattern("instagram|ig|insta", r"[A-Za-z0-9_.]{2,30}"),
    ),
    "phone": (
        re.compile(r"(?<![\d-])\(?\d{3}\)?[ .-]?\d{3}[ .-]\d{4}(?![\d-])"),
    ),
    "ssn": (
        re.compile(r"(?<![\d-])\d{3}-\d{2}-\d{4}(?![\d-])"),
    ),
    "twitter": (
        _url_pattern(r"twitter\.com", r"[A-Za-z0-9_]{1,15}", _TWITTER_STOPWORDS),
        _label_pattern("twitter|twtr", r"[A-Za-z0-9_]{1,15}"),
    ),
    "youtube": (
        re.compile(
            r"(?:https?://)?(?:www\.)?youtube\.com/(?:c/|channel/|user/|@)([A-Za-z0-9_-]{2,60})",
            re.IGNORECASE,
        ),
        _label_pattern(r"youtube|yt channel|yt", r"[A-Za-z0-9_-]{2,60}"),
    ),
}

#: Total number of compiled patterns — the paper's "12 regular expressions"
#: counts the social-URL and label styles jointly per category; this
#: implementation exposes the full per-issuer/per-style breakdown.
N_PATTERNS = sum(len(patterns) for patterns in PII_EXTRACTORS.values())


def extract_pii(text: str) -> dict[str, list[str]]:
    """All PII matches per category (deduplicated, order preserved)."""
    found: dict[str, list[str]] = {}
    for category, patterns in PII_EXTRACTORS.items():
        values = dict.fromkeys(
            match.group(1) if match.groups() else match.group(0)
            for pattern in patterns
            for match in pattern.finditer(text)
        )
        if values:
            found[category] = list(values)
    return found


def extract_pii_batch(
    texts: Sequence[str],
    cache: LRUCache[str, dict[str, list[str]]] | None = None,
) -> list[dict[str, list[str]]]:
    """:func:`extract_pii` over a batch, optionally memoised per text.

    With ``cache``, each *distinct* text runs the regex bank at most
    once — on template-heavy streams (repeated copypasta, the paper's
    coordinated-incitement shape) that removes nearly all extraction
    work.  Callers must treat returned dicts as read-only; repeats of a
    text share one dict object.
    """
    if cache is None:
        return [extract_pii(text) for text in texts]
    return [cache.get_or_compute(text, extract_pii)[0] for text in texts]


def pii_categories_present(text: str) -> frozenset[str]:
    """Which PII categories appear in ``text`` (presence only; faster)."""
    present = set()
    for category, patterns in PII_EXTRACTORS.items():
        if any(pattern.search(text) for pattern in patterns):
            present.add(category)
    return frozenset(present)


def evaluate_extractors(documents: Iterable[Document]) -> dict[str, float]:
    """Per-category presence accuracy against planted ground truth.

    Mirrors the paper's evaluation on a labelled dox sample: for each
    category, the fraction of documents where extracted presence equals
    planted presence.
    """
    totals: dict[str, int] = {c: 0 for c in PII_EXTRACTORS}
    correct: dict[str, int] = {c: 0 for c in PII_EXTRACTORS}
    n = 0
    for doc in documents:
        n += 1
        planted = set(doc.truth.pii_planted)
        present = pii_categories_present(doc.text)
        for category in PII_EXTRACTORS:
            totals[category] += 1
            if (category in planted) == (category in present):
                correct[category] += 1
    if n == 0:
        raise ValueError("no documents to evaluate")
    return {c: correct[c] / totals[c] for c in PII_EXTRACTORS}
