"""Pronoun-based target gender inference (paper §5.6).

The likely gender of a dox/CTH target is inferred from the pronoun group
that occurs most frequently in the text: "he/him/his" versus
"she/her/hers".  Ties and pronoun-free texts yield UNKNOWN.  The paper
reports 94.3 % agreement with the actual target on a labelled sample; the
method can be wrong when the attacker misgenders the target (itself a
harassment tactic, "deadnaming").
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.corpus.documents import Document
from repro.types import Gender

_MALE_RE = re.compile(r"\b(?:he|him|his)\b", re.IGNORECASE)
_FEMALE_RE = re.compile(r"\b(?:she|her|hers)\b", re.IGNORECASE)


def pronoun_counts(text: str) -> tuple[int, int]:
    """(male-group count, female-group count) for ``text``."""
    return len(_MALE_RE.findall(text)), len(_FEMALE_RE.findall(text))


def infer_gender(text: str) -> Gender:
    """Majority pronoun group, or UNKNOWN on ties/no pronouns."""
    male, female = pronoun_counts(text)
    if male > female:
        return Gender.MALE
    if female > male:
        return Gender.FEMALE
    return Gender.UNKNOWN


def evaluate_gender_inference(documents: Iterable[Document]) -> dict[str, float]:
    """Accuracy of pronoun inference on documents with a known target.

    Only documents whose ground truth records a gendered target *and*
    whose text contains pronouns enter the denominator, matching the
    paper's evaluation ("a sample of doxes ... that contained pronouns").
    """
    n = 0
    correct = 0
    for doc in documents:
        truth_gender = doc.truth.target_gender
        if truth_gender is Gender.UNKNOWN:
            continue
        inferred = infer_gender(doc.text)
        if inferred is Gender.UNKNOWN:
            continue
        n += 1
        if inferred is truth_gender:
            correct += 1
    if n == 0:
        raise ValueError("no gendered documents with pronouns to evaluate")
    return {"accuracy": correct / n, "n_evaluated": float(n)}
