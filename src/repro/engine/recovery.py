"""Artifact integrity and stage-retry policy: the engine's self-healing layer.

Three cooperating pieces make a cache trustworthy at the paper's scale
(560M+ posts means days-long runs that *will* see truncated writes, bad
disks, and flaky stages):

* :class:`CacheManifest` — a per-cache JSON manifest recording a blake2b
  content checksum for every artifact the store writes.  The store
  updates it atomically alongside each ``save`` and verifies artifacts
  against it on ``load``, raising :class:`ArtifactIntegrityError` on a
  mismatch so corruption is caught *before* a codec misparses the bytes.
* Quarantine-and-recompute — when verification (or the codec itself)
  fails, the engine moves the bad file to ``<cache>/quarantine/``,
  re-executes the stage and only the upstream subgraph it actually
  needs, and records the stage as ``STATUS_RECOVERED`` instead of
  aborting the run (see :meth:`Engine._resolve`).
* :class:`RetryPolicy` — bounded re-execution of transiently failing
  stage functions with exponential backoff, applied uniformly to fresh
  runs and recovery recomputes; attempt counts surface in the run
  report.

:func:`verify_cache` is the offline face of the same checks, driving
``repro cache verify``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import threading
from typing import TYPE_CHECKING, Callable, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (store imports us)
    from repro.engine.store import ArtifactStore

#: Filename of the integrity manifest inside a cache directory.
MANIFEST_NAME = "manifest.json"

#: Subdirectory where failed artifacts are moved for post-mortem.
QUARANTINE_DIR = "quarantine"

_CHUNK = 1 << 20


def checksum_file(path: pathlib.Path) -> str:
    """Content checksum (32-hex blake2b) of a file, read in chunks."""
    digest = hashlib.blake2b(digest_size=16)
    with path.open("rb") as handle:
        while True:
            chunk = handle.read(_CHUNK)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


class ArtifactIntegrityError(RuntimeError):
    """A cached artifact's bytes do not match its recorded checksum."""

    def __init__(self, path: pathlib.Path, expected: str, actual: str) -> None:
        super().__init__(
            f"artifact {path.name} failed integrity verification "
            f"(expected {expected[:12]}…, found {actual[:12]}…)"
        )
        self.path = path
        self.expected = expected
        self.actual = actual


class CacheManifest:
    """Atomic JSON manifest mapping artifact filenames to checksums.

    Writers re-read the file under a lock before every update, so
    concurrent stage threads in one process never lose entries; the
    rewrite itself goes through a temp file + ``os.replace`` like every
    artifact write.  Artifacts absent from the manifest (caches written
    before the integrity layer existed) load unverified rather than
    erroring — ``repro cache verify`` reports them as ``unmanifested``.
    """

    def __init__(self, path: pathlib.Path) -> None:
        self.path = pathlib.Path(path)
        self._lock = threading.Lock()

    def _read(self) -> dict[str, str]:
        try:
            raw = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return {}
        entries = raw.get("artifacts", {}) if isinstance(raw, dict) else {}
        return {str(k): str(v) for k, v in entries.items()}

    def _write(self, entries: dict[str, str]) -> None:
        payload = json.dumps(
            {"version": 1, "artifacts": dict(sorted(entries.items()))},
            indent=0,
            sort_keys=True,
        )
        tmp = self.path.with_name(f".tmp-{os.getpid()}-{self.path.name}")
        tmp.write_text(payload)
        os.replace(tmp, self.path)

    def expected(self, filename: str) -> str | None:
        """The recorded checksum for ``filename``, or None if unmanifested."""
        return self._read().get(filename)

    def entries(self) -> dict[str, str]:
        """A snapshot of every (filename, checksum) pair."""
        return self._read()

    def record(self, filename: str, digest: str) -> None:
        with self._lock:
            entries = self._read()
            entries[filename] = digest
            self._write(entries)

    def forget(self, filename: str) -> None:
        with self._lock:
            entries = self._read()
            if entries.pop(filename, None) is not None:
                self._write(entries)

    def prune_missing(self, root: pathlib.Path) -> int:
        """Drop entries whose artifact file no longer exists under ``root``
        (externally deleted files would otherwise report as missing
        forever); returns how many were dropped."""
        with self._lock:
            entries = self._read()
            stale = [name for name in entries if not (root / name).exists()]
            for name in stale:
                del entries[name]
            if stale:
                self._write(entries)
        return len(stale)


def _retry_transient(exc: BaseException) -> bool:
    """Default retry predicate: ordinary errors yes, interrupts/exits no."""
    return isinstance(exc, Exception)


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Bounded re-execution of failing stage functions.

    ``max_attempts`` counts total executions (1 = no retries); between
    attempt *n* and *n+1* the engine sleeps ``backoff_base * 2**(n-1)``
    seconds; ``retryable`` filters which exceptions are worth retrying
    (defaults to any ``Exception`` — never ``KeyboardInterrupt``).
    """

    max_attempts: int = 1
    backoff_base: float = 0.0
    retryable: Callable[[BaseException], bool] = _retry_transient

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be >= 0")

    def delay(self, attempt: int) -> float:
        """Seconds to wait after the given (1-based) failed attempt."""
        return self.backoff_base * (2 ** (attempt - 1))


#: Verification statuses reported by :func:`verify_cache`.
VERIFY_OK = "ok"  # checksum matches
VERIFY_CORRUPT = "corrupt"  # checksum mismatch: bytes changed on disk
VERIFY_UNMANIFESTED = "unmanifested"  # pre-integrity-layer artifact
VERIFY_MISSING = "missing"  # manifested but the file is gone


@dataclasses.dataclass(frozen=True)
class VerifyFinding:
    """One artifact's verification outcome (for ``repro cache verify``)."""

    filename: str
    status: str


@dataclasses.dataclass(frozen=True)
class VerifyReport:
    """Outcome of verifying every artifact in a cache directory."""

    findings: tuple[VerifyFinding, ...]

    def count(self, status: str) -> int:
        return sum(1 for f in self.findings if f.status == status)

    @property
    def ok(self) -> bool:
        """True when no artifact is corrupt or missing."""
        return not any(
            f.status in (VERIFY_CORRUPT, VERIFY_MISSING) for f in self.findings
        )


def verify_cache(store: "ArtifactStore") -> VerifyReport:
    """Check every artifact in ``store`` against the cache manifest.

    Read-only: corrupt artifacts are reported, not quarantined — the
    engine quarantines lazily on the next load that needs them.
    """
    manifest = store.manifest.entries()
    findings: list[VerifyFinding] = []
    seen: set[str] = set()
    for entry in store.entries():
        name = entry.path.name
        seen.add(name)
        expected = manifest.get(name)
        if expected is None:
            status = VERIFY_UNMANIFESTED
        elif checksum_file(entry.path) != expected:
            status = VERIFY_CORRUPT
        else:
            status = VERIFY_OK
        findings.append(VerifyFinding(filename=name, status=status))
    for name in sorted(manifest):
        if name not in seen:
            findings.append(VerifyFinding(filename=name, status=VERIFY_MISSING))
    return VerifyReport(findings=tuple(findings))
