"""Staged execution engine: cacheable, parallelizable pipeline stages.

The paper's Fig.-1 pipeline filtered 560M+ posts through seed → train →
active-learning → threshold → expert-annotation stages; at that scale
every stage is a separately checkpointed, re-runnable job.  This package
provides the execution substrate for the reproduction's equivalent:
content-hashed cache keys (:mod:`repro.engine.keys`), a disk-backed
artifact store with per-type codecs and checksum manifests
(:mod:`repro.engine.store`), a demand-driven scheduler with per-stage
observability (:mod:`repro.engine.core`), and a self-healing layer —
artifact integrity verification, quarantine-and-recompute, stage retry
policies, and a deterministic fault-injection harness
(:mod:`repro.engine.recovery`, :mod:`repro.engine.faults`).
"""

from repro.engine.core import (
    STATUS_HIT,
    STATUS_RECOVERED,
    STATUS_RUN,
    Engine,
    RunOutcome,
    RunReport,
    Stage,
    StageRecord,
)
from repro.engine.keys import canonicalize, fingerprint
from repro.engine.recovery import (
    ArtifactIntegrityError,
    CacheManifest,
    RetryPolicy,
    VerifyReport,
    verify_cache,
)
from repro.engine.store import (
    CORPUS,
    FILTER_MODEL,
    NUMPY,
    PICKLE,
    ArtifactEntry,
    ArtifactStore,
    CorpusCodec,
    FilterModelCodec,
    NumpyCodec,
    PickleCodec,
)

__all__ = [
    "Engine",
    "RunOutcome",
    "RunReport",
    "Stage",
    "StageRecord",
    "STATUS_RUN",
    "STATUS_HIT",
    "STATUS_RECOVERED",
    "ArtifactIntegrityError",
    "CacheManifest",
    "RetryPolicy",
    "VerifyReport",
    "verify_cache",
    "canonicalize",
    "fingerprint",
    "ArtifactEntry",
    "ArtifactStore",
    "CorpusCodec",
    "FilterModelCodec",
    "NumpyCodec",
    "PickleCodec",
    "CORPUS",
    "FILTER_MODEL",
    "NUMPY",
    "PICKLE",
]
