"""The staged execution engine.

An :class:`Engine` holds a DAG of named stages.  Each stage declares its
input stages, its cache-key material (configs, seeds, loop indices), and
a codec for its output artifact.  ``run(targets)`` then:

1. plans demand-driven: walking down from the targets, a stage whose
   artifact is already cached becomes a leaf — its inputs are neither
   loaded nor computed (so a warm study re-run executes zero stages);
2. executes the plan, on a thread pool when ``jobs > 1`` (the hot paths
   are numpy and release the GIL; independent stages such as the DOX and
   CTH pipelines, or per-source threshold searches, run concurrently);
3. records per-stage wall time and cache hit/miss status into a
   :class:`RunReport` whose summary table shows where pipeline time goes.

Because stage keys chain through their inputs' keys, results are
identical with caching on or off, and with ``jobs=1`` or ``jobs=N`` —
every stage is a pure function of its inputs plus named RNG streams.

The engine is also self-healing: a cached artifact that fails checksum
verification or whose codec raises on load is quarantined and the stage
(plus only the upstream subgraph it actually needs) is transparently
re-executed — the run completes with the stage marked
``STATUS_RECOVERED`` instead of aborting.  A :class:`RetryPolicy` bounds
re-execution of transiently failing stage functions; attempt counts are
recorded per stage.  See :mod:`repro.engine.recovery`.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from typing import Callable, Mapping, Sequence

from repro.engine.keys import fingerprint
from repro.engine.recovery import RetryPolicy
from repro.engine.store import PICKLE, ArtifactStore, Codec
from repro.obs.trace import Tracer
from repro.util.tables import format_table

#: Stage completion statuses recorded in the run report.
STATUS_RUN = "run"  # executed (cache miss or caching off)
STATUS_HIT = "hit"  # artifact loaded from the store
STATUS_RECOVERED = "recovered"  # cached artifact failed, quarantined + re-executed


@dataclasses.dataclass(frozen=True)
class Stage:
    """One node of the execution graph."""

    name: str
    fn: Callable[..., object]
    inputs: tuple[str, ...] = ()
    key_parts: tuple[object, ...] = ()
    codec: Codec = PICKLE
    cacheable: bool = True


@dataclasses.dataclass(frozen=True)
class StageRecord:
    """How one stage resolved during a run."""

    name: str
    status: str
    seconds: float
    key: str
    #: Stage-function executions this resolution took (1 = first try;
    #: >1 means the retry policy absorbed transient failures).
    attempts: int = 1


@dataclasses.dataclass(frozen=True)
class RunReport:
    """Per-stage timings and cache counters for one ``Engine.run``."""

    records: tuple[StageRecord, ...]

    @property
    def n_executed(self) -> int:
        return sum(1 for r in self.records if r.status == STATUS_RUN)

    @property
    def n_cache_hits(self) -> int:
        return sum(1 for r in self.records if r.status == STATUS_HIT)

    @property
    def n_recovered(self) -> int:
        return sum(1 for r in self.records if r.status == STATUS_RECOVERED)

    @property
    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.records)

    def record(self, name: str) -> StageRecord:
        for record in self.records:
            if record.name == name:
                return record
        raise KeyError(name)

    def render(self) -> str:
        rows = [
            (r.name, r.status, f"{r.seconds:.3f}", str(r.attempts), r.key[:12])
            for r in self.records
        ]
        summary = f"total ({self.n_executed} run / {self.n_cache_hits} hit"
        if self.n_recovered:
            summary += f" / {self.n_recovered} recovered"
        rows.append((summary + ")", "", f"{self.total_seconds:.3f}", "", ""))
        return format_table(("stage", "status", "seconds", "tries", "key"), rows)

    def populate_metrics(self, registry) -> None:
        """Project the run into an observability registry.

        Deliberately excludes wall-clock ``seconds``: the registry
        snapshot (like the trace) must be byte-identical across runs, so
        only the deterministic facts — stage statuses and retry counts —
        are projected.  Timings stay in :meth:`render` where
        non-determinism is expected.
        """
        statuses = registry.counter(
            "engine_stages", help="stage resolutions by cache status"
        )
        retries = registry.counter(
            "engine_retries", help="extra stage-function attempts absorbed"
        )
        for record in self.records:
            statuses.labels(status=record.status).inc()
            if record.attempts > 1:
                retries.labels(stage=record.name).inc(record.attempts - 1)


@dataclasses.dataclass(frozen=True)
class RunOutcome:
    """Resolved values for the demanded stages, plus the report."""

    values: Mapping[str, object]
    report: RunReport

    def __getitem__(self, name: str) -> object:
        return self.values[name]


class Engine:
    """Registers stages and runs the demanded subgraph."""

    def __init__(
        self,
        store: ArtifactStore | None = None,
        jobs: int = 1,
        force: bool = False,
        retry: RetryPolicy | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.store = store
        self.jobs = jobs
        self.force = force
        self.retry = retry or RetryPolicy()
        #: observability sink; stage spans are flushed on a *logical*
        #: clock in plan order at the end of ``run()``, so the trace is
        #: byte-identical across runs and ``jobs`` settings (wall-clock
        #: timings stay in the RunReport, never in the trace)
        self.tracer = tracer
        self._stages: dict[str, Stage] = {}
        self._keys: dict[str, str] = {}

    # -- graph construction --------------------------------------------------

    def add(
        self,
        name: str,
        fn: Callable[..., object],
        inputs: Sequence[str] = (),
        key: Sequence[object] = (),
        codec: Codec | None = None,
        cacheable: bool = True,
    ) -> str:
        """Register a stage; returns its name for wiring downstream stages.

        ``fn`` receives the resolved input values positionally, in the
        declared order.  Inputs must already be registered, which keeps
        the graph acyclic by construction.
        """
        if name in self._stages:
            raise ValueError(f"stage {name!r} is already registered")
        for dep in inputs:
            if dep not in self._stages:
                raise KeyError(f"stage {name!r} depends on unknown stage {dep!r}")
        self._stages[name] = Stage(
            name=name,
            fn=fn,
            inputs=tuple(inputs),
            key_parts=tuple(key),
            codec=codec or PICKLE,
            cacheable=cacheable,
        )
        return name

    def add_source(self, name: str, value: object) -> str:
        """Register a pre-computed value (never cached to disk)."""
        return self.add(name, lambda: value, cacheable=False)

    def key_of(self, name: str) -> str:
        """The stage's deterministic cache key (chains through inputs)."""
        cached = self._keys.get(name)
        if cached is not None:
            return cached
        stage = self._stages[name]
        key = fingerprint(
            stage.name,
            stage.key_parts,
            tuple(self.key_of(dep) for dep in stage.inputs),
        )
        self._keys[name] = key
        return key

    # -- execution -----------------------------------------------------------

    def run(self, targets: Sequence[str]) -> RunOutcome:
        """Resolve ``targets``, loading cached stages and running the rest."""
        plan: dict[str, str] = {}  # name -> STATUS_RUN | STATUS_HIT
        order: list[str] = []  # topological (inputs before consumers)

        def visit(name: str) -> None:
            if name in plan:
                return
            stage = self._stages[name]  # KeyError on unknown target
            if (
                stage.cacheable
                and self.store is not None
                and not self.force
                and self.store.has(name, self.key_of(name), stage.codec.extension)
            ):
                plan[name] = STATUS_HIT
                order.append(name)
                return
            plan[name] = STATUS_RUN
            for dep in stage.inputs:
                visit(dep)
            order.append(name)

        for target in targets:
            visit(target)

        values: dict[str, object] = {}
        records: dict[str, StageRecord] = {}
        # Stages resolved *outside* the plan — upstream recomputes forced
        # by a quarantined artifact — are recorded here so recovery work
        # is visible in the report.
        extras: dict[str, StageRecord] = {}
        extras_lock = threading.Lock()
        # Per-stage trace-event buffers.  Each buffer is written only by
        # the one worker resolving that stage (recovery events land in
        # the consumer stage's buffer), so no lock is needed; the flush
        # below replays them in plan order on a logical clock.
        stage_events: dict[str, list[tuple[str, dict[str, object]]]] = (
            {name: [] for name in order} if self.tracer is not None else {}
        )

        def record_extra(record: StageRecord) -> None:
            with extras_lock:
                extras.setdefault(record.name, record)

        if self.jobs == 1 or len(order) <= 1:
            for name in order:
                values[name], records[name] = self._resolve(
                    name, plan[name], values, record_extra,
                    events=stage_events.get(name),
                )
        else:
            self._run_parallel(
                order, plan, values, records, record_extra, stage_events
            )
        ordered = [records[name] for name in order]
        ordered.extend(extras[n] for n in sorted(extras) if n not in records)
        report = RunReport(records=tuple(ordered))
        if self.tracer is not None:
            self._flush_trace(targets, order, report, stage_events)
        return RunOutcome(values=values, report=report)

    def _flush_trace(
        self,
        targets: Sequence[str],
        order: Sequence[str],
        report: RunReport,
        stage_events: Mapping[str, Sequence[tuple[str, dict[str, object]]]],
    ) -> None:
        """Emit the run's spans on a logical clock, one tick per stage.

        Stages are replayed in deterministic plan order — not completion
        order — and wall-clock seconds never enter the trace, so the
        bytes are identical for ``jobs=1`` and ``jobs=N`` and across
        machines.
        """
        run_span = self.tracer.span(
            "engine-run",
            targets=",".join(targets),
            stages=len(report.records),
            cache_hits=report.n_cache_hits,
            recovered=report.n_recovered,
        )
        clock = 0.0
        in_plan = set(order)
        for record in report.records:
            stage_span = run_span.child(
                "stage",
                start=clock,
                end=clock + 1.0,
                stage=record.name,
                status=record.status,
                attempts=record.attempts,
                key=record.key[:12],
                planned=record.name in in_plan,
            )
            for event_name, labels in stage_events.get(record.name, ()):
                stage_span.event(event_name, clock, **labels)
            clock += 1.0
        run_span.close(0.0, clock)

    def _execute(
        self, stage: Stage, input_values: Sequence[object]
    ) -> tuple[object, int]:
        """Run a stage function under the retry policy; returns
        (value, attempts taken)."""
        attempt = 1
        while True:
            try:
                return stage.fn(*input_values), attempt
            except BaseException as exc:
                if attempt >= self.retry.max_attempts or not self.retry.retryable(exc):
                    raise
                delay = self.retry.delay(attempt)
                if delay > 0:
                    time.sleep(delay)
                attempt += 1

    def _try_load(self, name: str, key: str, stage: Stage) -> tuple[object, bool]:
        """Load a cached artifact; on integrity/codec failure, quarantine
        the file and report failure instead of raising."""
        try:
            return self.store.load(name, key, stage.codec), True
        except Exception:
            self.store.quarantine(self.store.path_for(name, key, stage.codec.extension))
            return None, False

    def _compute_and_save(
        self, name: str, key: str, stage: Stage, input_values: Sequence[object]
    ) -> tuple[object, int]:
        value, attempts = self._execute(stage, input_values)
        if stage.cacheable and self.store is not None:
            self.store.save(name, key, stage.codec, value)
        return value, attempts

    def _demand(
        self,
        name: str,
        memo: dict[str, object],
        record_extra: Callable[[StageRecord], None],
        events: list[tuple[str, dict[str, object]]] | None = None,
    ) -> object:
        """Resolve one upstream stage on demand during recovery.

        The planner pruned this stage (its consumer was a cache hit), so
        resolve it now: load its artifact when intact, quarantine and
        recompute otherwise, recursing only into the inputs that are
        actually needed.  ``memo`` carries already-resolved values so a
        diamond-shaped subgraph computes each stage once.  ``events``
        is the *consumer* stage's trace buffer: demand-resolutions are
        part of that stage's recovery story, and the buffer stays
        single-writer because the whole recovery runs on its thread.
        """
        if name in memo:
            return memo[name]
        stage = self._stages[name]
        key = self.key_of(name)
        started = time.perf_counter()
        status = STATUS_RUN
        attempts = 1
        value, loaded = None, False
        if (
            stage.cacheable
            and self.store is not None
            and not self.force
            and self.store.has(name, key, stage.codec.extension)
        ):
            value, loaded = self._try_load(name, key, stage)
            status = STATUS_HIT if loaded else STATUS_RECOVERED
            if not loaded and events is not None:
                events.append(("quarantine", {"stage": name}))
        if not loaded:
            inputs = [
                self._demand(dep, memo, record_extra, events)
                for dep in stage.inputs
            ]
            value, attempts = self._compute_and_save(name, key, stage, inputs)
        memo[name] = value
        if events is not None:
            events.append(("demand", {"stage": name, "status": status}))
        record_extra(StageRecord(
            name=name, status=status, seconds=time.perf_counter() - started,
            key=key, attempts=attempts,
        ))
        return value

    def _resolve(
        self,
        name: str,
        status: str,
        values: Mapping[str, object],
        record_extra: Callable[[StageRecord], None],
        events: list[tuple[str, dict[str, object]]] | None = None,
    ) -> tuple[object, StageRecord]:
        stage = self._stages[name]
        key = self.key_of(name)
        started = time.perf_counter()
        attempts = 1
        if status == STATUS_HIT:
            value, loaded = self._try_load(name, key, stage)
            if not loaded:
                # Quarantine-and-recompute: the artifact was moved aside;
                # re-execute this stage plus only the upstream subgraph
                # it needs (the planner pruned those as leaves).
                status = STATUS_RECOVERED
                if events is not None:
                    events.append(("quarantine", {"stage": name}))
                memo = dict(values)
                inputs = [
                    self._demand(dep, memo, record_extra, events)
                    for dep in stage.inputs
                ]
                value, attempts = self._compute_and_save(name, key, stage, inputs)
        else:
            value, attempts = self._compute_and_save(
                name, key, stage, [values[dep] for dep in stage.inputs]
            )
        elapsed = time.perf_counter() - started
        return value, StageRecord(
            name=name, status=status, seconds=elapsed, key=key, attempts=attempts
        )

    def _run_parallel(
        self,
        order: Sequence[str],
        plan: Mapping[str, str],
        values: dict[str, object],
        records: dict[str, StageRecord],
        record_extra: Callable[[StageRecord], None],
        stage_events: Mapping[str, list[tuple[str, dict[str, object]]]] | None = None,
    ) -> None:
        # Cache hits have no scheduling dependencies: their inputs are
        # pruned from the plan entirely.
        waiting_on = {
            name: (
                {dep for dep in self._stages[name].inputs if dep in plan}
                if plan[name] == STATUS_RUN
                else set()
            )
            for name in order
        }
        lock = threading.Lock()  # guards `values` across worker threads
        pending = list(order)
        running: dict[Future, str] = {}
        failure: BaseException | None = None

        def resolve(name: str) -> tuple[object, StageRecord]:
            with lock:
                snapshot = dict(values)
            return self._resolve(
                name, plan[name], snapshot, record_extra,
                events=(stage_events or {}).get(name),
            )

        with ThreadPoolExecutor(max_workers=self.jobs) as pool:
            while pending or running:
                if failure is None:
                    ready = [n for n in pending if not waiting_on[n]]
                    for name in ready:
                        pending.remove(name)
                        running[pool.submit(resolve, name)] = name
                if not running:
                    break
                done, _ = wait(running, return_when=FIRST_COMPLETED)
                for future in done:
                    name = running.pop(future)
                    try:
                        value, record = future.result()
                    except BaseException as exc:  # noqa: BLE001 - reraised below
                        if failure is None:
                            failure = exc
                        continue
                    with lock:
                        values[name] = value
                    records[name] = record
                    for other in waiting_on.values():
                        other.discard(name)
        if failure is not None:
            raise failure
