"""Disk-backed artifact store for stage outputs.

Artifacts live flat under one cache directory, named
``<stage>-<key>.<ext>`` where ``<key>`` is the stage's 32-hex content
key — so a config change produces new files rather than overwriting old
ones, and ``repro cache ls`` can attribute every file to its stage.

Each stage picks a codec matching its payload: corpora round-trip as
JSONL through :mod:`repro.corpus.io`, trained filter models as ``.npz``
through :mod:`repro.nlp.serialize`, numpy score vectors as ``.npy``, and
everything else (label states, result containers) as pickles.  Writes go
through a temp file + ``os.replace`` so a crashed run never leaves a
truncated artifact behind, and every write records a content checksum in
the cache manifest (:mod:`repro.engine.recovery`); ``load`` verifies it
so corruption surfaces as :class:`ArtifactIntegrityError` instead of a
codec misparse, and :meth:`ArtifactStore.quarantine` moves bad files
aside for the engine's recompute path.
"""

from __future__ import annotations

import dataclasses
import os
import pathlib
import pickle
import re
import threading
from typing import Iterable, Protocol

import numpy as np

from repro.engine.recovery import (
    MANIFEST_NAME,
    QUARANTINE_DIR,
    ArtifactIntegrityError,
    CacheManifest,
    checksum_file,
)


class Codec(Protocol):
    """Serialization strategy for one artifact type."""

    extension: str

    def save(self, value: object, path: pathlib.Path) -> None: ...

    def load(self, path: pathlib.Path) -> object: ...


class PickleCodec:
    extension = ".pkl"

    def save(self, value: object, path: pathlib.Path) -> None:
        with path.open("wb") as handle:
            pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)

    def load(self, path: pathlib.Path) -> object:
        with path.open("rb") as handle:
            return pickle.load(handle)


class NumpyCodec:
    extension = ".npy"

    def save(self, value: object, path: pathlib.Path) -> None:
        with path.open("wb") as handle:
            np.save(handle, np.asarray(value), allow_pickle=False)

    def load(self, path: pathlib.Path) -> object:
        with path.open("rb") as handle:
            return np.load(handle, allow_pickle=False)


class CorpusCodec:
    """Documents as JSONL via :mod:`repro.corpus.io` (ground truth intact)."""

    extension = ".jsonl"

    def save(self, value: object, path: pathlib.Path) -> None:
        from repro.corpus.io import write_jsonl

        write_jsonl(value, path)

    def load(self, path: pathlib.Path) -> object:
        from repro.corpus.io import read_corpus

        return read_corpus(path)


class FilterModelCodec:
    """A ``(classifier, vectorizer)`` pair via :mod:`repro.nlp.serialize`."""

    extension = ".npz"

    def save(self, value: object, path: pathlib.Path) -> None:
        from repro.nlp.serialize import save_filter_model

        model, vectorizer = value
        save_filter_model(path, model, vectorizer)

    def load(self, path: pathlib.Path) -> object:
        from repro.nlp.serialize import load_filter_model

        model, vectorizer, _metadata = load_filter_model(path)
        return model, vectorizer


#: Shared codec instances (all are stateless).
PICKLE = PickleCodec()
NUMPY = NumpyCodec()
CORPUS = CorpusCodec()
FILTER_MODEL = FilterModelCodec()

_FILENAME_RE = re.compile(r"^(?P<stage>.+)-(?P<key>[0-9a-f]{32})(?P<ext>\.[a-z]+)$")


def _sanitize(stage: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]", "_", stage)


@dataclasses.dataclass(frozen=True)
class ArtifactEntry:
    """One cached artifact on disk (for ``repro cache ls``)."""

    stage: str
    key: str
    path: pathlib.Path
    n_bytes: int
    modified: float


class ArtifactStore:
    """Flat on-disk artifact cache keyed by (stage name, content key)."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.manifest = CacheManifest(self.root / MANIFEST_NAME)

    def path_for(self, stage: str, key: str, extension: str) -> pathlib.Path:
        return self.root / f"{_sanitize(stage)}-{key}{extension}"

    def has(self, stage: str, key: str, extension: str) -> bool:
        return self.path_for(stage, key, extension).exists()

    def save(self, stage: str, key: str, codec: Codec, value: object) -> pathlib.Path:
        final = self.path_for(stage, key, codec.extension)
        # The temp name keeps the real extension as suffix: numpy's savers
        # append their extension when the target lacks it.
        tmp = final.with_name(
            f".tmp-{os.getpid()}-{threading.get_ident()}-{final.name}"
        )
        try:
            codec.save(value, tmp)
            digest = checksum_file(tmp)
            os.replace(tmp, final)
        finally:
            tmp.unlink(missing_ok=True)
        self.manifest.record(final.name, digest)
        return final

    def load(self, stage: str, key: str, codec: Codec, verify: bool = True) -> object:
        """Load an artifact, verifying its checksum against the manifest.

        Unmanifested artifacts (caches predating the integrity layer)
        load unverified; a checksum mismatch raises
        :class:`ArtifactIntegrityError` before the codec touches the
        bytes.
        """
        path = self.path_for(stage, key, codec.extension)
        if verify:
            expected = self.manifest.expected(path.name)
            if expected is not None:
                actual = checksum_file(path)
                if actual != expected:
                    raise ArtifactIntegrityError(path, expected, actual)
        return codec.load(path)

    def quarantine(self, path: pathlib.Path) -> pathlib.Path | None:
        """Move a failed artifact into ``<root>/quarantine/`` for
        post-mortem and drop its manifest entry; returns the new path
        (None when the file already vanished)."""
        path = pathlib.Path(path)
        self.manifest.forget(path.name)
        if not path.exists():
            return None
        qdir = self.root / QUARANTINE_DIR
        qdir.mkdir(exist_ok=True)
        dest = qdir / path.name
        suffix = 0
        while dest.exists():
            suffix += 1
            dest = qdir / f"{path.name}.{suffix}"
        os.replace(path, dest)
        return dest

    def entries(self) -> list[ArtifactEntry]:
        """Cached artifacts sorted by (stage, key) — a stable, diffable
        order independent of directory enumeration and mtimes.  Leftover
        ``.tmp-*`` files from killed runs are not artifacts and are
        skipped (their names would otherwise satisfy the pattern with a
        mangled stage prefix)."""
        found: list[ArtifactEntry] = []
        for path in sorted(self.root.iterdir()):
            if path.name.startswith(".tmp-"):
                continue
            match = _FILENAME_RE.match(path.name)
            if match is None or not path.is_file():
                continue
            stat = path.stat()
            found.append(
                ArtifactEntry(
                    stage=match.group("stage"),
                    key=match.group("key"),
                    path=path,
                    n_bytes=stat.st_size,
                    modified=stat.st_mtime,
                )
            )
        return sorted(found, key=lambda e: (e.stage, e.key))

    def sweep_temp_files(self) -> int:
        """Delete stale ``.tmp-*`` droppings left by killed writers."""
        removed = 0
        for path in sorted(self.root.iterdir()):
            if path.name.startswith(".tmp-") and path.is_file():
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    def clear(self, stages: Iterable[str] | None = None) -> int:
        """Delete cached artifacts (optionally only for some stages),
        dropping their manifest entries; a full clear also sweeps stale
        temp files."""
        wanted = None if stages is None else {_sanitize(s) for s in stages}
        removed = 0
        for entry in self.entries():
            if wanted is not None and entry.stage not in wanted:
                continue
            entry.path.unlink(missing_ok=True)
            self.manifest.forget(entry.path.name)
            removed += 1
        if wanted is None:
            removed += self.sweep_temp_files()
            self.manifest.prune_missing(self.root)
        return removed
