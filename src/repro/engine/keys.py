"""Deterministic cache keys derived from configuration content.

A stage's cache key is a content hash of everything that can change its
output: the stage name, its declared key material (configs, seeds, loop
indices), and — transitively — the keys of its input stages.  Hashing
canonicalized *content* rather than object identity means a key survives
process restarts and library imports, and changing any upstream knob
invalidates exactly the stages downstream of it.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from typing import Mapping


def canonicalize(value: object) -> object:
    """Reduce ``value`` to a deterministic, order-independent structure.

    Supports the configuration vocabulary of the reproduction: dataclasses
    (by field name), enums (by class and member name), mappings (sorted by
    canonicalized key), sequences, sets, and JSON-ish scalars.  Floats go
    through ``float.hex`` so equal values hash equally without repr noise.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = tuple(
            (f.name, canonicalize(getattr(value, f.name)))
            for f in dataclasses.fields(value)
        )
        return ("dataclass", type(value).__qualname__, fields)
    if isinstance(value, enum.Enum):
        return ("enum", type(value).__qualname__, value.name)
    if isinstance(value, Mapping):
        items = tuple(
            sorted((repr(canonicalize(k)), canonicalize(v)) for k, v in value.items())
        )
        return ("mapping", items)
    if isinstance(value, (list, tuple)):
        return ("sequence", tuple(canonicalize(v) for v in value))
    if isinstance(value, (set, frozenset)):
        return ("set", tuple(sorted(repr(canonicalize(v)) for v in value)))
    if isinstance(value, float):
        return ("float", value.hex())
    if value is None or isinstance(value, (bool, int, str, bytes)):
        return (type(value).__name__, value)
    raise TypeError(
        f"cannot derive a cache key from {type(value).__name__!r}; "
        "stage key material must be configs, enums, scalars, or containers of those"
    )


def fingerprint(*parts: object) -> str:
    """Return a 32-hex-character content hash of ``parts``."""
    digest = hashlib.blake2b(digest_size=16)
    for part in parts:
        digest.update(repr(canonicalize(part)).encode("utf-8"))
        digest.update(b"\x1f")
    return digest.hexdigest()
