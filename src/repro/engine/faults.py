"""Deterministic fault injection for exercising the recovery layer.

The recovery tests need to *manufacture* the failures a long pipeline
run eventually sees — bit rot in a cached artifact, a write truncated by
a kill, a stage that fails transiently N times — and they need to do so
deterministically so a recovered run can be asserted byte-identical to a
clean one.  Nothing here draws randomness: corruption sites are explicit
byte offsets and failure counts are explicit integers.

These helpers are test infrastructure shipped in the package (like the
paper-constant tables) so downstream users can fault-test their own
stage graphs.
"""

from __future__ import annotations

import pathlib
import threading
from typing import Callable

from repro.engine.store import Codec


def flip_bytes(
    path: pathlib.Path | str,
    offsets: tuple[int, ...] = (0,),
    mask: int = 0xFF,
) -> None:
    """XOR the byte at each offset with ``mask`` (negative offsets count
    from the end).  Simulates bit rot without changing the file size, so
    only checksum verification — not a length check — can catch it."""
    path = pathlib.Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise ValueError(f"cannot flip bytes of empty file {path}")
    if mask == 0:
        raise ValueError("mask 0 would leave the file unchanged")
    for offset in offsets:
        data[offset % len(data)] ^= mask
    path.write_bytes(bytes(data))


def truncate_file(
    path: pathlib.Path | str, keep_fraction: float = 0.5
) -> None:
    """Drop the tail of a file, as a killed writer would have left it."""
    if not 0 <= keep_fraction < 1:
        raise ValueError("keep_fraction must be in [0, 1)")
    path = pathlib.Path(path)
    data = path.read_bytes()
    path.write_bytes(data[: int(len(data) * keep_fraction)])


class FlakyFunction:
    """Wrap a stage function to fail its first ``failures`` calls.

    Thread-safe (parallel engines call stage functions from a pool);
    ``calls`` counts total invocations for assertions.
    """

    def __init__(
        self,
        fn: Callable[..., object],
        failures: int,
        exc_type: type[BaseException] = RuntimeError,
    ) -> None:
        self._fn = fn
        self._remaining = failures
        self._exc_type = exc_type
        self._lock = threading.Lock()
        self.calls = 0

    def __call__(self, *args: object) -> object:
        with self._lock:
            self.calls += 1
            should_fail = self._remaining > 0
            if should_fail:
                self._remaining -= 1
            n = self.calls
        if should_fail:
            raise self._exc_type(f"injected stage failure (call #{n})")
        return self._fn(*args)


def fail_n_times(
    fn: Callable[..., object],
    n: int,
    exc_type: type[BaseException] = RuntimeError,
) -> FlakyFunction:
    """Convenience constructor for :class:`FlakyFunction`."""
    return FlakyFunction(fn, failures=n, exc_type=exc_type)


class FlakyCodec:
    """Wrap a codec so its first ``load_failures`` loads raise.

    Models a codec-level parse failure that checksum verification cannot
    see (the bytes are intact, the reader is not) — the quarantine path
    must catch both.
    """

    def __init__(self, inner: Codec, load_failures: int = 1) -> None:
        self._inner = inner
        self._remaining = load_failures
        self._lock = threading.Lock()
        self.extension = inner.extension

    def save(self, value: object, path: pathlib.Path) -> None:
        self._inner.save(value, path)

    def load(self, path: pathlib.Path) -> object:
        with self._lock:
            should_fail = self._remaining > 0
            if should_fail:
                self._remaining -= 1
        if should_fail:
            raise OSError(f"injected codec load failure for {path.name}")
        return self._inner.load(path)
