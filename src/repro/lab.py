"""One-call orchestration of the full study.

:func:`run_study` builds the synthetic corpus, runs both filtering
pipelines, and codes the annotated true positives — everything the §6-§8
analyses and the benchmark harness consume.  Results are deterministic
given the config.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Mapping, Sequence

from repro.corpus.documents import Corpus, Document
from repro.corpus.generator import CorpusBuilder, CorpusConfig
from repro.pipeline.filtering import FilteringPipeline, PipelineConfig
from repro.pipeline.results import PipelineResult
from repro.pipeline.vectorized import VectorizedCorpus
from repro.taxonomy.coding import CodedDocument, ExpertCoder
from repro.types import Platform, Task


@dataclasses.dataclass(frozen=True)
class StudyConfig:
    corpus: CorpusConfig = dataclasses.field(default_factory=CorpusConfig)
    pipeline: PipelineConfig = dataclasses.field(default_factory=PipelineConfig)

    @classmethod
    def tiny(cls, seed: int = 7) -> "StudyConfig":
        return cls(corpus=CorpusConfig.tiny(seed), pipeline=PipelineConfig.tiny(seed))


@dataclasses.dataclass
class Study:
    """A completed end-to-end run of the reproduction."""

    config: StudyConfig
    corpus: Corpus
    vectorized: VectorizedCorpus
    results: Mapping[Task, PipelineResult]

    @functools.cached_property
    def coder(self) -> ExpertCoder:
        return ExpertCoder()

    @functools.cached_property
    def coded_cth_by_platform(self) -> dict[Platform, list[CodedDocument]]:
        """Expert-coded annotated true-positive calls to harassment,
        grouped by platform (chat merges Discord+Telegram, as in Table 5)."""
        grouped: dict[Platform, list[CodedDocument]] = {}
        for doc in self.results[Task.CTH].true_positive_documents():
            grouped.setdefault(doc.platform, []).append(self.coder.code(doc))
        return grouped

    @functools.cached_property
    def coded_cth(self) -> list[CodedDocument]:
        return [c for docs in self.coded_cth_by_platform.values() for c in docs]

    @functools.cached_property
    def annotated_doxes_by_platform(self) -> dict[Platform, list[Document]]:
        grouped: dict[Platform, list[Document]] = {}
        for doc in self.results[Task.DOX].true_positive_documents():
            grouped.setdefault(doc.platform, []).append(doc)
        return grouped

    @functools.cached_property
    def annotated_doxes(self) -> list[Document]:
        return [d for docs in self.annotated_doxes_by_platform.values() for d in docs]

    def above_threshold(self, task: Task) -> Sequence[Document]:
        return self.results[task].above_threshold_documents()


def run_study(config: StudyConfig | None = None) -> Study:
    """Build the corpus and run both pipelines end to end."""
    config = config or StudyConfig()
    corpus = CorpusBuilder(config.corpus).build()
    non_blog = [d for d in corpus if d.platform is not Platform.BLOGS]
    vectorized = VectorizedCorpus(non_blog, seed=config.pipeline.seed)
    results = {
        task: FilteringPipeline(task, config.pipeline).run(vectorized)
        for task in (Task.DOX, Task.CTH)
    }
    return Study(config=config, corpus=corpus, vectorized=vectorized, results=results)
