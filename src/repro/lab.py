"""One-call orchestration of the full study.

:func:`run_study` builds the synthetic corpus, runs both filtering
pipelines, and codes the annotated true positives — everything the §6-§8
analyses and the benchmark harness consume.  Results are deterministic
given the config.

The study is an execution graph on :mod:`repro.engine`::

    corpus ── vectorized ──┬── seed:dox ─ train:dox ─ al:dox:* ─ … ─ result:dox
                           └── seed:cth ─ train:cth ─ al:cth:* ─ … ─ result:cth

With ``cache_dir`` set, every stage artifact is checkpointed to disk
(corpus as JSONL, final models as ``.npz``, scores as ``.npy``, states
as pickles) and a re-run with the same config executes zero stages.
With ``jobs > 1`` the two task pipelines — which share only the
vectorized corpus — and the per-source threshold searches inside each
task run concurrently on a thread pool, with byte-identical results.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Mapping, Sequence

from repro.corpus.documents import Corpus, Document
from repro.corpus.generator import CorpusBuilder, CorpusConfig
from repro.engine import CORPUS, ArtifactStore, Engine, RetryPolicy, RunReport
from repro.obs.recorder import RunObserver
from repro.pipeline.filtering import FilteringPipeline, PipelineConfig
from repro.pipeline.results import PipelineResult
from repro.pipeline.vectorized import VectorizedCorpus
from repro.taxonomy.coding import CodedDocument, ExpertCoder
from repro.types import Platform, Task


@dataclasses.dataclass(frozen=True)
class StudyConfig:
    corpus: CorpusConfig = dataclasses.field(default_factory=CorpusConfig)
    pipeline: PipelineConfig = dataclasses.field(default_factory=PipelineConfig)

    @classmethod
    def tiny(cls, seed: int = 7) -> "StudyConfig":
        return cls(corpus=CorpusConfig.tiny(seed), pipeline=PipelineConfig.tiny(seed))


@dataclasses.dataclass
class Study:
    """A completed end-to-end run of the reproduction."""

    config: StudyConfig
    corpus: Corpus
    vectorized: VectorizedCorpus
    results: Mapping[Task, PipelineResult]
    #: Per-stage timings and cache hit/miss counters for the run.
    run_report: RunReport | None = None

    @functools.cached_property
    def coder(self) -> ExpertCoder:
        return ExpertCoder()

    @functools.cached_property
    def coded_cth_by_platform(self) -> dict[Platform, list[CodedDocument]]:
        """Expert-coded annotated true-positive calls to harassment,
        grouped by platform (chat merges Discord+Telegram, as in Table 5)."""
        grouped: dict[Platform, list[CodedDocument]] = {}
        for doc in self.results[Task.CTH].true_positive_documents():
            grouped.setdefault(doc.platform, []).append(self.coder.code(doc))
        return grouped

    @functools.cached_property
    def coded_cth(self) -> list[CodedDocument]:
        return [c for docs in self.coded_cth_by_platform.values() for c in docs]

    @functools.cached_property
    def annotated_doxes_by_platform(self) -> dict[Platform, list[Document]]:
        grouped: dict[Platform, list[Document]] = {}
        for doc in self.results[Task.DOX].true_positive_documents():
            grouped.setdefault(doc.platform, []).append(doc)
        return grouped

    @functools.cached_property
    def annotated_doxes(self) -> list[Document]:
        return [d for docs in self.annotated_doxes_by_platform.values() for d in docs]

    def above_threshold(self, task: Task) -> Sequence[Document]:
        return self.results[task].above_threshold_documents()


def build_study_graph(engine: Engine, config: StudyConfig) -> dict[str, str]:
    """Register the full study graph; returns the target stage names.

    The returned mapping has ``"corpus"``, ``"vectorized"``, and one
    ``result:<task>`` entry per task.
    """

    def _build_corpus() -> Corpus:
        return CorpusBuilder(config.corpus).build()

    def _vectorize(corpus: Corpus) -> VectorizedCorpus:
        non_blog = [d for d in corpus if d.platform is not Platform.BLOGS]
        return VectorizedCorpus(non_blog, seed=config.pipeline.seed)

    corpus_s = engine.add("corpus", _build_corpus, key=(config.corpus,), codec=CORPUS)
    vectorized_s = engine.add(
        "vectorized", _vectorize, inputs=(corpus_s,), key=(config.pipeline.seed,)
    )
    targets = {"corpus": corpus_s, "vectorized": vectorized_s}
    for task in (Task.DOX, Task.CTH):
        pipeline = FilteringPipeline(task, config.pipeline)
        targets[f"result:{task.value}"] = pipeline.register(engine, vectorized_s)
    return targets


def run_study(
    config: StudyConfig | None = None,
    *,
    cache_dir: str | None = None,
    jobs: int = 1,
    force: bool = False,
    retries: int = 0,
    retry_backoff: float = 0.0,
    trace_dir: str | None = None,
) -> Study:
    """Build the corpus and run both pipelines end to end.

    ``cache_dir`` enables the disk-backed stage cache (a warm re-run
    executes zero stages); ``jobs`` sizes the stage thread pool;
    ``force`` re-runs every stage even when cached.  Corrupt or
    truncated cached artifacts are quarantined and recomputed
    transparently (``STATUS_RECOVERED`` in the run report); ``retries``
    additionally re-executes transiently failing stages up to that many
    extra times, backing off ``retry_backoff * 2**n`` seconds between
    attempts.  ``trace_dir`` opts into observability: the engine's
    logical-clock stage trace plus the stage-status metrics are saved
    there in ``repro obs`` format (deterministic — no wall-clock values
    enter the artifacts).
    """
    config = config or StudyConfig()
    store = ArtifactStore(cache_dir) if cache_dir is not None else None
    retry = RetryPolicy(max_attempts=retries + 1, backoff_base=retry_backoff)
    recorder = RunObserver("study") if trace_dir is not None else None
    engine = Engine(
        store=store, jobs=jobs, force=force, retry=retry,
        tracer=recorder.tracer if recorder is not None else None,
    )
    targets = build_study_graph(engine, config)
    outcome = engine.run(list(targets.values()))
    if recorder is not None:
        outcome.report.populate_metrics(recorder.metrics)
        recorder.save(trace_dir)
    return Study(
        config=config,
        corpus=outcome.values[targets["corpus"]],
        vectorized=outcome.values[targets["vectorized"]],
        results={
            task: outcome.values[targets[f"result:{task.value}"]]
            for task in (Task.DOX, Task.CTH)
        },
        run_report=outcome.report,
    )
